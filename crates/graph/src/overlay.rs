//! Layered CSR overlay and epoch-tagged snapshots: the versioned graph substrate.
//!
//! [`Graph::apply_delta`] rebuilds both CSR directions in `O(|V| + |E|)` per batch, which
//! the update benchmarks show dominating per-delta cost once the dirty region stops
//! shrinking (high-churn streams). An [`OverlayGraph`] amortises that: it keeps the last
//! compacted flat CSR (the *base*) plus per-node sorted patch arrays — inserts and
//! tombstones, maintained for both adjacency directions — and merges them lazily during
//! neighbour iteration. Untouched nodes (almost all of them, for a small delta) take a
//! **zero-patch fast path**: one slot load and compare, then the raw base slice, so the
//! tight adjacency loops downstream (balls, locality orders, extractions) pay nothing
//! until a node is actually patched.
//!
//! Applying a delta is `O(|δ| log |δ| + patch sizes)` instead of a rebuild. Patch entries
//! cancel instead of stacking: deleting an overlay-inserted edge removes the insert, and
//! re-inserting a tombstoned base edge removes the tombstone — so an oscillating
//! delete/reinsert stream keeps the overlay mass bounded and, crucially, a
//! tombstone-then-reinsert cycle can never resurrect a stale patch after compaction.
//! When the live overlay mass exceeds a configurable fraction of `|E|`
//! ([`CompactionPolicy`]), the overlay **compacts**: the same sorted three-way merge that
//! [`Graph::apply_delta`] uses folds the patches into a fresh flat CSR, the patch tables
//! reset, and iteration is branch-free again.
//!
//! On top of the overlay sit **epoch-tagged snapshots**. Every applied delta bumps the
//! [`GraphEpoch`]; the base CSR is shared behind an `Arc`, so cloning an [`OverlayGraph`]
//! — and therefore pinning a version — costs `O(|V_slots| + patches)`, not
//! `O(|V| + |E|)`. [`VersionedGraph`] packages the serving pattern: readers
//! [`VersionedGraph::pin`] an immutable [`SnapshotHandle`] (an `Arc` bump) while a writer
//! stages the next delta batch and [`VersionedGraph::publish`]es it as the next epoch.

use crate::delta::{merge_patched, DeltaTarget};
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::labels::Label;
use crate::view::AdjView;
use crate::GraphDelta;
use std::sync::Arc;

/// When the overlay folds itself back into a flat CSR.
///
/// Compaction triggers after a delta application leaves more than
/// `max(max_overlay_fraction · |E_base|, min_overlay_ops)` live patch entries (counted
/// over one direction; the reverse tables mirror them). The fraction keeps merge overhead
/// proportional to graph size; the floor stops tiny graphs from compacting on every
/// batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Live patch entries tolerated as a fraction of the base edge count.
    pub max_overlay_fraction: f64,
    /// Absolute floor below which the overlay never compacts.
    pub min_overlay_ops: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_overlay_fraction: 0.25,
            min_overlay_ops: 64,
        }
    }
}

impl CompactionPolicy {
    /// A policy that compacts after every non-empty batch — the patch tables never carry
    /// state across applications. Used by tests to cross compaction boundaries often.
    pub fn eager() -> Self {
        CompactionPolicy {
            max_overlay_fraction: 0.0,
            min_overlay_ops: 0,
        }
    }

    /// A policy that never compacts, regardless of overlay mass.
    pub fn never() -> Self {
        CompactionPolicy {
            max_overlay_fraction: f64::INFINITY,
            min_overlay_ops: usize::MAX,
        }
    }

    fn threshold(&self, base_edges: usize) -> usize {
        if self.max_overlay_fraction.is_infinite() {
            return usize::MAX;
        }
        ((self.max_overlay_fraction * base_edges as f64) as usize).max(self.min_overlay_ops)
    }
}

/// Monotonically increasing version tag of an [`OverlayGraph`]. Every applied delta
/// produces the next epoch; compaction changes the representation, not the version.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphEpoch(pub u64);

impl GraphEpoch {
    /// The epoch following this one.
    pub fn next(self) -> GraphEpoch {
        GraphEpoch(self.0 + 1)
    }
}

impl std::fmt::Display for GraphEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Patch state of one node in one direction: edges added on top of the base CSR and base
/// edges tombstoned out of it. Both lists stay sorted ascending, and the invariants
/// `ins ∩ base = ∅`, `del ⊆ base` hold at all times (cancellation maintains them).
#[derive(Debug, Clone, Default)]
struct NodePatch {
    ins: Vec<NodeId>,
    del: Vec<NodeId>,
}

impl NodePatch {
    fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }
}

/// Per-node patch lookup for one adjacency direction: a `|V|`-sized slot array
/// (`u32::MAX` = never patched — the fast-path check) pointing into a dense patch pool.
#[derive(Debug, Clone)]
struct PatchTable {
    slot: Vec<u32>,
    patches: Vec<NodePatch>,
}

impl PatchTable {
    fn new(n: usize) -> Self {
        PatchTable {
            slot: vec![u32::MAX; n],
            patches: Vec::new(),
        }
    }

    #[inline]
    fn get(&self, node: NodeId) -> Option<&NodePatch> {
        match self.slot[node.index()] {
            u32::MAX => None,
            s => Some(&self.patches[s as usize]),
        }
    }

    fn entry(&mut self, node: NodeId) -> &mut NodePatch {
        let s = self.slot[node.index()];
        if s == u32::MAX {
            self.slot[node.index()] = self.patches.len() as u32;
            self.patches.push(NodePatch::default());
            self.patches.last_mut().expect("just pushed")
        } else {
            &mut self.patches[s as usize]
        }
    }

    fn clear(&mut self) {
        self.slot.fill(u32::MAX);
        self.patches.clear();
    }
}

fn sorted_insert(list: &mut Vec<NodeId>, value: NodeId) {
    let at = list.partition_point(|&x| x < value);
    debug_assert!(
        at == list.len() || list[at] != value,
        "duplicate patch entry"
    );
    list.insert(at, value);
}

fn sorted_remove(list: &mut Vec<NodeId>, value: NodeId) {
    let at = list
        .binary_search(&value)
        .expect("patch entry to cancel must exist");
    list.remove(at);
}

/// A flat CSR base plus per-node sorted insert/tombstone patches for both directions,
/// merged on iteration. See the module docs for the design.
///
/// The base is shared behind an `Arc`, so `Clone` — and therefore pinning the current
/// version before mutating — costs `O(|V| + patches)` rather than `O(|V| + |E|)`.
#[derive(Debug, Clone)]
pub struct OverlayGraph {
    base: Arc<Graph>,
    fwd: PatchTable,
    rev: PatchTable,
    /// Merged edge count (base − tombstones + inserts), maintained incrementally.
    edge_count: usize,
    /// Live inserted edges in the overlay (forward direction).
    overlay_ins: usize,
    /// Live tombstoned base edges (forward direction).
    overlay_del: usize,
    epoch: GraphEpoch,
    policy: CompactionPolicy,
    compactions: u64,
}

impl OverlayGraph {
    /// Wraps a flat graph as epoch 0 of a versioned substrate, with the default
    /// [`CompactionPolicy`].
    pub fn new(base: Graph) -> Self {
        Self::with_policy(base, CompactionPolicy::default())
    }

    /// [`OverlayGraph::new`] with an explicit compaction policy.
    pub fn with_policy(base: Graph, policy: CompactionPolicy) -> Self {
        let n = base.node_count();
        let edge_count = base.edge_count();
        OverlayGraph {
            base: Arc::new(base),
            fwd: PatchTable::new(n),
            rev: PatchTable::new(n),
            edge_count,
            overlay_ins: 0,
            overlay_del: 0,
            epoch: GraphEpoch::default(),
            policy,
            compactions: 0,
        }
    }

    /// The flat CSR the patches layer over (the state as of the last compaction).
    #[inline]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Current version tag; bumped by every [`OverlayGraph::apply_delta`].
    #[inline]
    pub fn epoch(&self) -> GraphEpoch {
        self.epoch
    }

    /// The compaction policy in force.
    #[inline]
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// How many times the overlay has folded itself back into a flat CSR.
    #[inline]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Live patch entries (inserted + tombstoned edges, forward direction).
    #[inline]
    pub fn overlay_mass(&self) -> usize {
        self.overlay_ins + self.overlay_del
    }

    /// Overlay mass as a fraction of the base edge count (0 for an edgeless base).
    pub fn overlay_fraction(&self) -> f64 {
        let base_edges = self.base.edge_count();
        if base_edges == 0 {
            return if self.overlay_mass() == 0 { 0.0 } else { 1.0 };
        }
        self.overlay_mass() as f64 / base_edges as f64
    }

    /// Returns `true` when no patches are live — iteration is pure base CSR.
    #[inline]
    pub fn is_flat(&self) -> bool {
        self.overlay_mass() == 0
    }

    /// Number of nodes (fixed across deltas, like [`Graph`]).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.base.node_count()
    }

    /// Number of edges of the merged graph.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.base.nodes()
    }

    /// Returns `true` when `node` is a node of the graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.base.contains_node(node)
    }

    /// Label of `node`. Labels never change under edge deltas, so this delegates to the
    /// base — as does the label index.
    #[inline]
    pub fn label(&self, node: NodeId) -> Label {
        self.base.label(node)
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        self.base.labels()
    }

    /// Nodes carrying `label`, ascending (the base's label index; valid because edge
    /// deltas never touch labels).
    #[inline]
    pub fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        self.base.nodes_with_label(label)
    }

    /// Out-neighbours of `node` in the merged graph, ascending.
    #[inline]
    pub fn out_neighbors(&self, node: NodeId) -> OverlayNeighbors<'_> {
        Self::neighbors(&self.base, &self.fwd, node, Graph::out_neighbors_slice)
    }

    /// In-neighbours of `node` in the merged graph, ascending.
    #[inline]
    pub fn in_neighbors(&self, node: NodeId) -> OverlayNeighbors<'_> {
        Self::neighbors(&self.base, &self.rev, node, Graph::in_neighbors_slice)
    }

    #[inline]
    fn neighbors<'a>(
        base: &'a Graph,
        table: &'a PatchTable,
        node: NodeId,
        slice_of: impl Fn(&'a Graph, NodeId) -> &'a [NodeId],
    ) -> OverlayNeighbors<'a> {
        let slice = slice_of(base, node);
        match table.get(node) {
            None => OverlayNeighbors::base(slice),
            Some(p) if p.is_empty() => OverlayNeighbors::base(slice),
            Some(p) => OverlayNeighbors::merged(slice, &p.ins, &p.del),
        }
    }

    /// Out-degree of `node` in the merged graph.
    pub fn out_degree(&self, node: NodeId) -> usize {
        let base = self.base.out_degree(node);
        match self.fwd.get(node) {
            None => base,
            Some(p) => base + p.ins.len() - p.del.len(),
        }
    }

    /// In-degree of `node` in the merged graph.
    pub fn in_degree(&self, node: NodeId) -> usize {
        let base = self.base.in_degree(node);
        match self.rev.get(node) {
            None => base,
            Some(p) => base + p.ins.len() - p.del.len(),
        }
    }

    /// Returns `true` when the merged graph has the directed edge `(from, to)`.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        if !self.contains_node(from) || !self.contains_node(to) {
            return false;
        }
        match self.fwd.get(from) {
            None => self.base.has_edge(from, to),
            Some(p) => {
                if p.ins.binary_search(&to).is_ok() {
                    true
                } else if p.del.binary_search(&to).is_ok() {
                    false
                } else {
                    self.base.has_edge(from, to)
                }
            }
        }
    }

    /// Applies a validated batch of edge updates in place, in
    /// `O(|δ| log |δ| + patch sizes)`, and bumps the epoch. Compacts afterwards when the
    /// policy says so. On validation failure the overlay is left untouched.
    ///
    /// Patch entries cancel: deleting an overlay-inserted edge removes the insert and
    /// re-inserting a tombstoned base edge removes the tombstone, so the overlay mass
    /// tracks the *live* divergence from the base, not the update history.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<(), GraphError> {
        delta.validate(self)?;
        for (from, to) in delta.inserted_edges() {
            self.insert_edge_unchecked(from, to);
        }
        for (from, to) in delta.deleted_edges() {
            self.delete_edge_unchecked(from, to);
        }
        self.epoch = self.epoch.next();
        if self.overlay_mass() > self.policy.threshold(self.base.edge_count()) {
            self.compact();
        }
        Ok(())
    }

    fn insert_edge_unchecked(&mut self, from: NodeId, to: NodeId) {
        if self.base.has_edge(from, to) {
            // Validation says the merged graph lacks the edge, so it must be tombstoned:
            // cancel the tombstone instead of stacking an insert on top of it.
            sorted_remove(&mut self.fwd.entry(from).del, to);
            sorted_remove(&mut self.rev.entry(to).del, from);
            self.overlay_del -= 1;
        } else {
            sorted_insert(&mut self.fwd.entry(from).ins, to);
            sorted_insert(&mut self.rev.entry(to).ins, from);
            self.overlay_ins += 1;
        }
        self.edge_count += 1;
    }

    fn delete_edge_unchecked(&mut self, from: NodeId, to: NodeId) {
        if self.base.has_edge(from, to) {
            sorted_insert(&mut self.fwd.entry(from).del, to);
            sorted_insert(&mut self.rev.entry(to).del, from);
            self.overlay_del += 1;
        } else {
            // The merged graph has the edge but the base does not: it is an overlay
            // insert, which the deletion cancels.
            sorted_remove(&mut self.fwd.entry(from).ins, to);
            sorted_remove(&mut self.rev.entry(to).ins, from);
            self.overlay_ins -= 1;
        }
        self.edge_count -= 1;
    }

    /// Materialises the merged graph as a flat CSR [`Graph`] without mutating the
    /// overlay. Untouched nodes take a bulk copy; patched nodes take the same sorted
    /// three-way merge [`Graph::apply_delta`] uses. The label index is cloned, never
    /// recounted.
    pub fn to_graph(&self) -> Graph {
        let n = self.node_count();
        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_targets = Vec::with_capacity(self.edge_count);
        let mut rev_offsets = Vec::with_capacity(n + 1);
        let mut rev_targets = Vec::with_capacity(self.edge_count);
        fwd_offsets.push(0);
        rev_offsets.push(0);
        for v in 0..n {
            let node = NodeId::from_index(v);
            Self::merge_node(
                self.base.out_neighbors_slice(node),
                self.fwd.get(node),
                &mut fwd_targets,
            );
            fwd_offsets.push(fwd_targets.len());
            Self::merge_node(
                self.base.in_neighbors_slice(node),
                self.rev.get(node),
                &mut rev_targets,
            );
            rev_offsets.push(rev_targets.len());
        }
        debug_assert_eq!(fwd_targets.len(), self.edge_count);
        debug_assert_eq!(rev_targets.len(), self.edge_count);
        Graph::from_csr_with_index(
            self.base.labels().to_vec(),
            fwd_offsets,
            fwd_targets,
            rev_offsets,
            rev_targets,
            self.base.label_index_clone(),
        )
    }

    #[inline]
    fn merge_node(old: &[NodeId], patch: Option<&NodePatch>, out: &mut Vec<NodeId>) {
        match patch {
            None => out.extend_from_slice(old),
            Some(p) if p.is_empty() => out.extend_from_slice(old),
            Some(p) => merge_patched(old, &p.ins, &p.del, out),
        }
    }

    /// Folds the live patches into a fresh flat base CSR and resets the patch tables.
    /// The logical graph — and the epoch — are unchanged; snapshots pinned earlier keep
    /// the old base alive through their `Arc`.
    pub fn compact(&mut self) {
        if self.is_flat() {
            return;
        }
        self.base = Arc::new(self.to_graph());
        self.fwd.clear();
        self.rev.clear();
        self.overlay_ins = 0;
        self.overlay_del = 0;
        self.compactions += 1;
    }
}

impl AdjView for OverlayGraph {
    #[inline]
    fn id_space(&self) -> usize {
        self.node_count()
    }

    #[inline]
    fn label(&self, node: NodeId) -> Label {
        OverlayGraph::label(self, node)
    }

    #[inline]
    fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        OverlayGraph::out_neighbors(self, node)
    }

    #[inline]
    fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        OverlayGraph::in_neighbors(self, node)
    }

    #[inline]
    fn nodes_with_label(&self, label: Label) -> impl Iterator<Item = NodeId> + '_ {
        OverlayGraph::nodes_with_label(self, label).iter().copied()
    }
}

impl DeltaTarget for OverlayGraph {
    #[inline]
    fn node_count(&self) -> usize {
        OverlayGraph::node_count(self)
    }

    #[inline]
    fn label(&self, node: NodeId) -> Label {
        OverlayGraph::label(self, node)
    }

    #[inline]
    fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        OverlayGraph::has_edge(self, from, to)
    }
}

/// Merged neighbour iteration over one node's base slice and its patches. The zero-patch
/// fast path is a plain slice walk; patched nodes interleave sorted inserts and skip
/// tombstones with monotone cursors.
#[derive(Debug, Clone)]
pub struct OverlayNeighbors<'a> {
    base: &'a [NodeId],
    ins: &'a [NodeId],
    del: &'a [NodeId],
    bi: usize,
    ii: usize,
    di: usize,
}

impl<'a> OverlayNeighbors<'a> {
    #[inline]
    fn base(slice: &'a [NodeId]) -> Self {
        OverlayNeighbors {
            base: slice,
            ins: &[],
            del: &[],
            bi: 0,
            ii: 0,
            di: 0,
        }
    }

    #[inline]
    fn merged(base: &'a [NodeId], ins: &'a [NodeId], del: &'a [NodeId]) -> Self {
        OverlayNeighbors {
            base,
            ins,
            del,
            bi: 0,
            ii: 0,
            di: 0,
        }
    }
}

impl Iterator for OverlayNeighbors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        loop {
            let b = self.base.get(self.bi).copied();
            let i = self.ins.get(self.ii).copied();
            return match (b, i) {
                (None, None) => None,
                (Some(bv), iv) if iv.is_none_or(|iv| bv < iv) => {
                    self.bi += 1;
                    if self.di < self.del.len() && self.del[self.di] == bv {
                        self.di += 1;
                        continue;
                    }
                    Some(bv)
                }
                (_, Some(iv)) => {
                    self.ii += 1;
                    Some(iv)
                }
                // `b` is Some here (first arm handles (None, None)), so the guard on the
                // second arm only fails when `i` is Some — already matched above.
                (Some(_), None) => unreachable!("guarded arm covers base-only state"),
            };
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining =
            (self.base.len() - self.bi) + (self.ins.len() - self.ii) - (self.del.len() - self.di);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for OverlayNeighbors<'_> {}

/// An immutable, epoch-tagged view of a [`VersionedGraph`] version. Cheap to clone;
/// keeps the pinned version's base CSR alive even across later compactions.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    graph: Arc<OverlayGraph>,
}

impl SnapshotHandle {
    /// The pinned graph version.
    #[inline]
    pub fn graph(&self) -> &OverlayGraph {
        &self.graph
    }

    /// Epoch of the pinned version.
    #[inline]
    pub fn epoch(&self) -> GraphEpoch {
        self.graph.epoch()
    }
}

/// The serving wrapper over [`OverlayGraph`]: a published immutable version that readers
/// pin, plus an optional staged version a writer mutates. Publication swaps the staged
/// overlay in — `O(1)` beyond the `O(patches)` already paid while staging — and never
/// invalidates pinned snapshots.
#[derive(Debug, Clone)]
pub struct VersionedGraph {
    published: Arc<OverlayGraph>,
    staged: Option<OverlayGraph>,
}

impl VersionedGraph {
    /// Publishes `base` as epoch 0.
    pub fn new(base: Graph) -> Self {
        Self::from_overlay(OverlayGraph::new(base))
    }

    /// Publishes an existing overlay as the current version.
    pub fn from_overlay(overlay: OverlayGraph) -> Self {
        VersionedGraph {
            published: Arc::new(overlay),
            staged: None,
        }
    }

    /// The currently published version.
    #[inline]
    pub fn published(&self) -> &OverlayGraph {
        &self.published
    }

    /// Epoch of the currently published version.
    #[inline]
    pub fn epoch(&self) -> GraphEpoch {
        self.published.epoch()
    }

    /// Pins the published version. `O(1)`: an `Arc` clone.
    pub fn pin(&self) -> SnapshotHandle {
        SnapshotHandle {
            graph: Arc::clone(&self.published),
        }
    }

    /// Stages `delta` on top of the pending version (starting one from the published
    /// overlay if nothing is staged yet — an `O(|V| + patches)` copy, never a rebuild).
    /// Readers keep seeing the published epoch until [`VersionedGraph::publish`].
    pub fn stage(&mut self, delta: &GraphDelta) -> Result<(), GraphError> {
        let staged = self
            .staged
            .get_or_insert_with(|| self.published.as_ref().clone());
        staged.apply_delta(delta)
    }

    /// The staged (unpublished) version, when one exists.
    #[inline]
    pub fn staged(&self) -> Option<&OverlayGraph> {
        self.staged.as_ref()
    }

    /// Returns `true` when a staged version is pending publication.
    #[inline]
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Atomically swaps the staged version in as the published one and returns its
    /// epoch. A no-op returning the current epoch when nothing is staged. Snapshots
    /// pinned before the publish keep reading the old version.
    pub fn publish(&mut self) -> GraphEpoch {
        if let Some(staged) = self.staged.take() {
            self.published = Arc::new(staged);
        }
        self.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        Graph::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap()
    }

    fn assert_matches_flat(overlay: &OverlayGraph, flat: &Graph) {
        assert_eq!(overlay.node_count(), flat.node_count());
        assert_eq!(overlay.edge_count(), flat.edge_count());
        for v in flat.nodes() {
            assert_eq!(overlay.label(v), flat.label(v));
            assert_eq!(overlay.out_degree(v), flat.out_degree(v));
            assert_eq!(overlay.in_degree(v), flat.in_degree(v));
            let out: Vec<NodeId> = overlay.out_neighbors(v).collect();
            let want: Vec<NodeId> = flat.out_neighbors(v).collect();
            assert_eq!(out, want, "out-adjacency of {v}");
            let inn: Vec<NodeId> = overlay.in_neighbors(v).collect();
            let want_in: Vec<NodeId> = flat.in_neighbors(v).collect();
            assert_eq!(inn, want_in, "in-adjacency of {v}");
            for w in flat.nodes() {
                assert_eq!(overlay.has_edge(v, w), flat.has_edge(v, w), "edge {v}->{w}");
            }
        }
        assert_eq!(&overlay.to_graph(), flat);
    }

    #[test]
    fn zero_patch_overlay_mirrors_base() {
        let g = diamond();
        let overlay = OverlayGraph::new(g.clone());
        assert!(overlay.is_flat());
        assert_eq!(overlay.epoch(), GraphEpoch(0));
        assert_eq!(overlay.overlay_fraction(), 0.0);
        assert_matches_flat(&overlay, &g);
    }

    #[test]
    fn apply_delta_tracks_flat_rebuild() {
        let g = diamond();
        let mut overlay = OverlayGraph::with_policy(g.clone(), CompactionPolicy::never());
        let mut delta = GraphDelta::new();
        delta
            .delete_edge(NodeId(0), NodeId(2))
            .insert_edge(NodeId(3), NodeId(0))
            .insert_edge(NodeId(2), NodeId(1));
        overlay.apply_delta(&delta).unwrap();
        let flat = g.apply_delta(&delta).unwrap();
        assert_eq!(overlay.epoch(), GraphEpoch(1));
        assert_eq!(overlay.overlay_mass(), 3);
        assert_eq!(overlay.compactions(), 0);
        assert_matches_flat(&overlay, &flat);
    }

    #[test]
    fn cancellation_keeps_overlay_mass_live() {
        let g = diamond();
        let mut overlay = OverlayGraph::with_policy(g.clone(), CompactionPolicy::never());
        let mut delta = GraphDelta::new();
        delta
            .delete_edge(NodeId(0), NodeId(1))
            .insert_edge(NodeId(3), NodeId(0));
        overlay.apply_delta(&delta).unwrap();
        assert_eq!(overlay.overlay_mass(), 2);
        overlay.apply_delta(&delta.inverse()).unwrap();
        // The inverse cancelled both patches instead of stacking two more.
        assert_eq!(overlay.overlay_mass(), 0);
        assert!(overlay.is_flat());
        assert_eq!(overlay.epoch(), GraphEpoch(2));
        assert_matches_flat(&overlay, &g);
    }

    #[test]
    fn eager_policy_compacts_every_batch() {
        let g = diamond();
        let mut overlay = OverlayGraph::with_policy(g.clone(), CompactionPolicy::eager());
        let mut delta = GraphDelta::new();
        delta.delete_edge(NodeId(1), NodeId(3));
        overlay.apply_delta(&delta).unwrap();
        assert_eq!(overlay.compactions(), 1);
        assert!(overlay.is_flat());
        assert_matches_flat(&overlay, &g.apply_delta(&delta).unwrap());
        // Tombstone-then-reinsert across the compaction boundary: the reinsert must be
        // a fresh overlay insert against the compacted base, not a resurrected patch.
        overlay.apply_delta(&delta.inverse()).unwrap();
        assert_eq!(overlay.compactions(), 2);
        assert_matches_flat(&overlay, &g);
    }

    #[test]
    fn validation_failures_leave_the_overlay_untouched() {
        let g = diamond();
        let mut overlay = OverlayGraph::new(g.clone());
        let mut bad = GraphDelta::new();
        bad.insert_edge(NodeId(0), NodeId(1));
        assert_eq!(
            overlay.apply_delta(&bad).unwrap_err(),
            GraphError::EdgeExists { from: 0, to: 1 }
        );
        assert_eq!(overlay.epoch(), GraphEpoch(0));
        assert_matches_flat(&overlay, &g);
        // Validation runs against the merged state, not the base: after deleting the
        // edge in the overlay, re-inserting it is legal even though the base has it.
        let mut del = GraphDelta::new();
        del.delete_edge(NodeId(0), NodeId(1));
        overlay.apply_delta(&del).unwrap();
        let mut reinsert = GraphDelta::new();
        reinsert.insert_edge(NodeId(0), NodeId(1));
        overlay.apply_delta(&reinsert).unwrap();
        assert_matches_flat(&overlay, &g);
    }

    #[test]
    fn adj_view_impl_merges_patches() {
        let g = diamond();
        let mut overlay = OverlayGraph::with_policy(g.clone(), CompactionPolicy::never());
        let mut delta = GraphDelta::new();
        delta.insert_edge(NodeId(3), NodeId(0));
        overlay.apply_delta(&delta).unwrap();
        let flat = g.apply_delta(&delta).unwrap();
        let view = &overlay;
        assert_eq!(AdjView::id_space(view), flat.node_count());
        for v in flat.nodes() {
            let out: Vec<NodeId> = AdjView::out_neighbors(view, v).collect();
            assert_eq!(out, flat.out_neighbors(v).collect::<Vec<_>>());
            let inn: Vec<NodeId> = AdjView::in_neighbors(view, v).collect();
            assert_eq!(inn, flat.in_neighbors(v).collect::<Vec<_>>());
        }
        let labelled: Vec<NodeId> = AdjView::nodes_with_label(view, Label(1)).collect();
        assert_eq!(labelled, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn snapshots_pin_versions_across_publish_and_compaction() {
        let g = diamond();
        let mut store = VersionedGraph::new(g.clone());
        let pinned = store.pin();
        assert_eq!(pinned.epoch(), GraphEpoch(0));

        let mut delta = GraphDelta::new();
        delta.delete_edge(NodeId(0), NodeId(1));
        store.stage(&delta).unwrap();
        // Staged but unpublished: readers still see epoch 0 with the edge intact.
        assert_eq!(store.epoch(), GraphEpoch(0));
        assert!(store.published().has_edge(NodeId(0), NodeId(1)));
        assert!(store.has_staged());

        let published = store.publish();
        assert_eq!(published, GraphEpoch(1));
        assert!(!store.published().has_edge(NodeId(0), NodeId(1)));
        assert!(!store.has_staged());
        // The pinned snapshot still reads the pre-update version.
        assert!(pinned.graph().has_edge(NodeId(0), NodeId(1)));
        assert_eq!(pinned.epoch(), GraphEpoch(0));
        assert_eq!(&pinned.graph().to_graph(), &g);
        // Publishing with nothing staged is a no-op.
        assert_eq!(store.publish(), GraphEpoch(1));
    }

    #[test]
    fn degenerate_empty_graph() {
        let g = Graph::from_edges(vec![], &[]).unwrap();
        let overlay = OverlayGraph::new(g.clone());
        assert_eq!(overlay.node_count(), 0);
        assert_eq!(overlay.edge_count(), 0);
        assert_eq!(overlay.overlay_fraction(), 0.0);
        assert_eq!(&overlay.to_graph(), &g);
    }
}

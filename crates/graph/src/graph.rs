//! The node-labelled directed graph `G(V, E, l)`.
//!
//! Graphs are immutable once built (see [`crate::builder::GraphBuilder`]) and store both the
//! forward and the reverse adjacency in CSR (compressed sparse row) form. The reverse
//! adjacency is what makes *dual* simulation — the parent-preserving half of strong
//! simulation — as cheap to evaluate as plain simulation.

use crate::bitset::BitSet;
use crate::error::GraphError;
use crate::labels::Label;
use std::fmt;

/// Identifier of a node inside a [`Graph`]: a dense index in `0..node_count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node-labelled directed graph in CSR form.
///
/// Nodes are identified by dense [`NodeId`]s; every node carries exactly one [`Label`].
/// Parallel edges are collapsed at build time and self-loops are allowed (the paper's model
/// does not forbid them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    labels: Vec<Label>,
    fwd_offsets: Vec<usize>,
    fwd_targets: Vec<NodeId>,
    rev_offsets: Vec<usize>,
    rev_targets: Vec<NodeId>,
    /// Nodes grouped by label, used to seed candidate sets in the matchers.
    ///
    /// Entries are sorted by label so lookups are binary searches and iteration order is
    /// deterministic (a `HashMap` here made candidate seeding order run-dependent).
    label_index: Vec<(Label, Vec<NodeId>)>,
}

impl Graph {
    pub(crate) fn from_csr(
        labels: Vec<Label>,
        fwd_offsets: Vec<usize>,
        fwd_targets: Vec<NodeId>,
        rev_offsets: Vec<usize>,
        rev_targets: Vec<NodeId>,
    ) -> Self {
        let label_index = build_label_index(&labels);
        Graph {
            labels,
            fwd_offsets,
            fwd_targets,
            rev_offsets,
            rev_targets,
            label_index,
        }
    }

    /// [`Graph::from_csr`] with a prebuilt label index — for updates that keep the
    /// label vector untouched (edge deltas), where the index can be cloned instead of
    /// recounted.
    pub(crate) fn from_csr_with_index(
        labels: Vec<Label>,
        fwd_offsets: Vec<usize>,
        fwd_targets: Vec<NodeId>,
        rev_offsets: Vec<usize>,
        rev_targets: Vec<NodeId>,
        label_index: Vec<(Label, Vec<NodeId>)>,
    ) -> Self {
        debug_assert_eq!(label_index, build_label_index(&labels));
        Graph {
            labels,
            fwd_offsets,
            fwd_targets,
            rev_offsets,
            rev_targets,
            label_index,
        }
    }

    /// Clone of the label index, for [`Graph::from_csr_with_index`].
    pub(crate) fn label_index_clone(&self) -> Vec<(Label, Vec<NodeId>)> {
        self.label_index.clone()
    }

    /// Out-neighbours of `node` as a raw sorted slice (hot-path form of
    /// [`Graph::out_neighbors`] for bulk copies).
    #[inline]
    pub(crate) fn out_neighbors_slice(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.fwd_targets[self.fwd_offsets[i]..self.fwd_offsets[i + 1]]
    }

    /// In-neighbours of `node` as a raw sorted slice.
    #[inline]
    pub(crate) fn in_neighbors_slice(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.rev_targets[self.rev_offsets[i]..self.rev_offsets[i + 1]]
    }

    /// Builds a graph directly from a label vector and an edge list.
    ///
    /// Convenience for tests and small examples; larger construction sites should prefer
    /// [`crate::builder::GraphBuilder`].
    pub fn from_edges(labels: Vec<Label>, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut b = crate::builder::GraphBuilder::with_capacity(labels.len(), edges.len());
        for l in &labels {
            b.add_labeled_node(*l);
        }
        for &(s, t) in edges {
            b.try_add_edge(NodeId(s), NodeId(t))?;
        }
        Ok(b.build())
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of directed edges `|E|` (after parallel-edge deduplication).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.fwd_targets.len()
    }

    /// Total size `|V| + |E|`, the measure used in the paper's complexity statements.
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterates over all node ids `0..|V|`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// Returns the label of `node`.
    ///
    /// # Panics
    /// Panics when `node` is out of range.
    #[inline]
    pub fn label(&self, node: NodeId) -> Label {
        self.labels[node.index()]
    }

    /// Returns the label vector indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// All nodes carrying `label` (possibly empty), in ascending id order.
    pub fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        self.label_index
            .binary_search_by_key(&label, |&(l, _)| l)
            .map(|i| self.label_index[i].1.as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct labels present in the graph.
    pub fn distinct_label_count(&self) -> usize {
        self.label_index.len()
    }

    /// Out-neighbours (children) of `node`.
    #[inline]
    pub fn out_neighbors(&self, node: NodeId) -> std::iter::Copied<std::slice::Iter<'_, NodeId>> {
        let i = node.index();
        self.fwd_targets[self.fwd_offsets[i]..self.fwd_offsets[i + 1]]
            .iter()
            .copied()
    }

    /// In-neighbours (parents) of `node`.
    #[inline]
    pub fn in_neighbors(&self, node: NodeId) -> std::iter::Copied<std::slice::Iter<'_, NodeId>> {
        let i = node.index();
        self.rev_targets[self.rev_offsets[i]..self.rev_offsets[i + 1]]
            .iter()
            .copied()
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        let i = node.index();
        self.fwd_offsets[i + 1] - self.fwd_offsets[i]
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        let i = node.index();
        self.rev_offsets[i + 1] - self.rev_offsets[i]
    }

    /// Total (in + out) degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// Returns `true` when the directed edge `(from, to)` exists.
    ///
    /// Edge targets are sorted at build time, so this is a binary search over the smaller of
    /// the two adjacency lists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        if from.index() >= self.node_count() || to.index() >= self.node_count() {
            return false;
        }
        if self.out_degree(from) <= self.in_degree(to) {
            let i = from.index();
            self.fwd_targets[self.fwd_offsets[i]..self.fwd_offsets[i + 1]]
                .binary_search(&to)
                .is_ok()
        } else {
            let i = to.index();
            self.rev_targets[self.rev_offsets[i]..self.rev_offsets[i + 1]]
                .binary_search(&from)
                .is_ok()
        }
    }

    /// Iterates over every directed edge `(source, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_neighbors(u).map(move |v| (u, v)))
    }

    /// Returns `true` when `node` is a valid id of this graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    /// Extracts the subgraph induced by `nodes` (all edges of `G` between selected nodes).
    ///
    /// Returns the new graph together with the mapping *new id → original id*. Node ids in
    /// the result are assigned in the order of the (deduplicated, sorted) input slice.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut membership = BitSet::new(self.node_count());
        for &n in &sorted {
            assert!(
                self.contains_node(n),
                "induced_subgraph: node {n} out of range"
            );
            membership.insert(n.index());
        }
        let mut to_new: Vec<u32> = vec![u32::MAX; self.node_count()];
        for (new, &orig) in sorted.iter().enumerate() {
            to_new[orig.index()] = new as u32;
        }
        let mut builder =
            crate::builder::GraphBuilder::with_capacity(sorted.len(), sorted.len() * 2);
        for &orig in &sorted {
            builder.add_labeled_node(self.label(orig));
        }
        for &orig in &sorted {
            let src_new = NodeId(to_new[orig.index()]);
            for t in self.out_neighbors(orig) {
                if membership.contains(t.index()) {
                    builder.add_edge(src_new, NodeId(to_new[t.index()]));
                }
            }
        }
        (builder.build(), sorted)
    }

    /// Extracts the subgraph `G[Vs, Es]` given an explicit node set and edge set
    /// (both expressed with original node ids). Edges whose endpoints are not both in
    /// `nodes` are ignored, matching the paper's definition of a subgraph.
    pub fn subgraph_with_edges(
        &self,
        nodes: &[NodeId],
        edges: &[(NodeId, NodeId)],
    ) -> (Graph, Vec<NodeId>) {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut to_new: Vec<u32> = vec![u32::MAX; self.node_count()];
        for (new, &orig) in sorted.iter().enumerate() {
            to_new[orig.index()] = new as u32;
        }
        let mut builder = crate::builder::GraphBuilder::with_capacity(sorted.len(), edges.len());
        for &orig in &sorted {
            builder.add_labeled_node(self.label(orig));
        }
        for &(s, t) in edges {
            let (sn, tn) = (to_new[s.index()], to_new[t.index()]);
            if sn != u32::MAX && tn != u32::MAX && self.has_edge(s, t) {
                builder.add_edge(NodeId(sn), NodeId(tn));
            }
        }
        (builder.build(), sorted)
    }
}

/// Buckets nodes by label, sorted by label with ascending node ids inside each bucket.
///
/// Dense label alphabets (the overwhelmingly common case: generators and extractions use
/// small numeric labels) take a counting pass — one histogram over label ids, one scan in
/// node-id order — instead of an `O(V log V)` sort. Sparse alphabets (a huge label id on
/// a small graph) would waste the histogram, so they keep the sort-based path; both
/// produce the identical index.
fn build_label_index(labels: &[Label]) -> Vec<(Label, Vec<NodeId>)> {
    let Some(max_label) = labels.iter().map(|l| l.0 as usize).max() else {
        return Vec::new();
    };
    if max_label <= 4 * labels.len() + 64 {
        // Counting pass: per-label bucket sizes, then distinct labels in ascending order
        // (slots reuses the histogram as a label → index map), then one id-order fill.
        let mut counts = vec![0u32; max_label + 1];
        for l in labels {
            counts[l.0 as usize] += 1;
        }
        let mut label_index: Vec<(Label, Vec<NodeId>)> = Vec::new();
        let mut slots = counts;
        for (id, slot) in slots.iter_mut().enumerate() {
            let count = *slot;
            if count > 0 {
                *slot = label_index.len() as u32;
                label_index.push((Label(id as u32), Vec::with_capacity(count as usize)));
            }
        }
        for (i, l) in labels.iter().enumerate() {
            label_index[slots[l.0 as usize] as usize]
                .1
                .push(NodeId::from_index(i));
        }
        label_index
    } else {
        let mut by_label: Vec<(Label, NodeId)> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, NodeId::from_index(i)))
            .collect();
        by_label.sort_by_key(|&(l, n)| (l, n));
        let mut label_index: Vec<(Label, Vec<NodeId>)> = Vec::new();
        for (l, n) in by_label {
            match label_index.last_mut() {
                Some((last, nodes)) if *last == l => nodes.push(n),
                _ => label_index.push((l, vec![n])),
            }
        }
        label_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn bucket_and_sort_label_index_paths_agree() {
        // Dense alphabet (bucket path) vs a sparse huge label (sort path): both orders
        // must be (label ascending, node ascending).
        let dense = vec![Label(2), Label(0), Label(2), Label(1), Label(0)];
        let got = build_label_index(&dense);
        assert_eq!(
            got,
            vec![
                (Label(0), vec![NodeId(1), NodeId(4)]),
                (Label(1), vec![NodeId(3)]),
                (Label(2), vec![NodeId(0), NodeId(2)]),
            ]
        );
        let sparse = vec![Label(u32::MAX - 1), Label(3), Label(u32::MAX - 1)];
        let got = build_label_index(&sparse);
        assert_eq!(
            got,
            vec![
                (Label(3), vec![NodeId(1)]),
                (Label(u32::MAX - 1), vec![NodeId(0), NodeId(2)]),
            ]
        );
        assert!(build_label_index(&[]).is_empty());
    }

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn basic_counts_and_neighbors() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.size(), 8);
        assert_eq!(
            g.out_neighbors(NodeId(0)).collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2)]
        );
        assert_eq!(
            g.in_neighbors(NodeId(3)).collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2)]
        );
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.degree(NodeId(3)), 2);
    }

    #[test]
    fn has_edge_checks_both_directions() {
        let g = diamond();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
        assert!(!g.has_edge(NodeId(9), NodeId(0)));
    }

    #[test]
    fn labels_and_label_index() {
        let g = diamond();
        assert_eq!(g.label(NodeId(0)), Label(0));
        assert_eq!(g.nodes_with_label(Label(1)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.nodes_with_label(Label(9)), &[] as &[NodeId]);
        assert_eq!(g.distinct_label_count(), 3);
        assert_eq!(g.labels().len(), 4);
    }

    #[test]
    fn edges_iterator_enumerates_all() {
        let g = diamond();
        let mut edges: Vec<_> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn parallel_edges_are_deduplicated() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("x");
        let c = b.add_node("y");
        b.add_edge(a, c);
        b.add_edge(a, c);
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_are_preserved() {
        let g = Graph::from_edges(vec![Label(0)], &[(0, 0)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(0)));
        assert_eq!(
            g.out_neighbors(NodeId(0)).collect::<Vec<_>>(),
            vec![NodeId(0)]
        );
        assert_eq!(
            g.in_neighbors(NodeId(0)).collect::<Vec<_>>(),
            vec![NodeId(0)]
        );
    }

    #[test]
    fn from_edges_rejects_invalid_node() {
        let err = Graph::from_edges(vec![Label(0)], &[(0, 3)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidNode {
                node: 3,
                node_count: 1
            }
        );
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = diamond();
        let (sub, mapping) = g.induced_subgraph(&[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(sub.node_count(), 3);
        // edges 0->1 and 1->3 survive; 0->2->3 path does not.
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(mapping, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(sub.label(NodeId(2)), Label(2)); // new id 2 == original node 3
    }

    #[test]
    fn induced_subgraph_dedups_input() {
        let g = diamond();
        let (sub, mapping) = g.induced_subgraph(&[NodeId(1), NodeId(1), NodeId(0)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(mapping, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn subgraph_with_edges_filters_missing_edges() {
        let g = diamond();
        let (sub, _) = g.subgraph_with_edges(
            &[NodeId(0), NodeId(1), NodeId(3)],
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(3)),
                (NodeId(1), NodeId(3)),
            ],
        );
        // (0,3) is not an edge of g, so it is dropped.
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(vec![], &[]).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert!(!g.contains_node(NodeId(0)));
    }
}

//! Balls `Ĝ[w, r]`: the radius-`r` undirected neighbourhood of a node.
//!
//! A ball is the subgraph of `G` whose nodes lie within undirected distance `r` of the
//! center `w` and whose edges are **all** edges of `G` between those nodes (Section 2.2 of
//! the paper). Border nodes — nodes at distance exactly `r` — are tracked because the
//! `dualFilter` optimisation (Fig. 5, Proposition 5) starts its removal process from them.

use crate::bitset::BitSet;
use crate::graph::{Graph, NodeId};
use crate::traversal::bounded_bfs_undirected;
use crate::view::GraphView;

/// The ball `Ĝ[w, r]` of a data graph.
#[derive(Debug, Clone)]
pub struct Ball {
    center: NodeId,
    radius: usize,
    /// Members in BFS order from the center.
    members: Vec<NodeId>,
    /// Distance from the center for each entry of `members`.
    distances: Vec<u32>,
    /// Membership bitset over the *original* graph's node ids.
    membership: BitSet,
}

impl Ball {
    /// Builds the ball of radius `radius` centred at `center`.
    ///
    /// # Panics
    /// Panics when `center` is not a node of `graph`.
    pub fn new(graph: &Graph, center: NodeId, radius: usize) -> Self {
        assert!(graph.contains_node(center), "ball center {center} out of range");
        let (members, distances) = bounded_bfs_undirected(graph, center, radius);
        let mut membership = BitSet::new(graph.node_count());
        for &m in &members {
            membership.insert(m.index());
        }
        Ball { center, radius, members, distances, membership }
    }

    /// The ball center `w`.
    #[inline]
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// The ball radius `r`.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Nodes of the ball (original graph ids), in BFS order from the center.
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of nodes in the ball.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when `node` belongs to the ball.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.membership.contains(node.index())
    }

    /// Distance of `node` from the center, when the node is in the ball.
    pub fn distance(&self, node: NodeId) -> Option<usize> {
        self.members
            .iter()
            .position(|&m| m == node)
            .map(|i| self.distances[i] as usize)
    }

    /// Border nodes: members at distance exactly `radius` from the center.
    pub fn border_nodes(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .zip(&self.distances)
            .filter(|(_, &d)| d as usize == self.radius)
            .map(|(&m, _)| m)
            .collect()
    }

    /// Membership bitset over the original graph's node ids.
    #[inline]
    pub fn membership(&self) -> &BitSet {
        &self.membership
    }

    /// A [`GraphView`] of `graph` restricted to this ball.
    pub fn view<'a>(&'a self, graph: &'a Graph) -> GraphView<'a> {
        GraphView::restricted(graph, &self.membership)
    }

    /// Materialises the ball as a standalone graph; returns the graph and the mapping
    /// *new id → original id*. Mostly useful for presentation and tests — the matching
    /// algorithms use [`Ball::view`] instead.
    pub fn to_graph(&self, graph: &Graph) -> (Graph, Vec<NodeId>) {
        graph.induced_subgraph(&self.members)
    }

    /// Number of edges of the ball subgraph. `O(Σ deg)` over members.
    pub fn edge_count(&self, graph: &Graph) -> usize {
        self.members
            .iter()
            .map(|&u| graph.out_neighbors(u).filter(|v| self.contains(*v)).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn star_plus_tail() -> Graph {
        // 0 is the hub of a star over 1..=3; 3 -> 4 -> 5 is a tail.
        Graph::from_edges(
            vec![Label(0); 6],
            &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)],
        )
        .unwrap()
    }

    #[test]
    fn radius_one_ball() {
        let g = star_plus_tail();
        let ball = Ball::new(&g, NodeId(0), 1);
        assert_eq!(ball.center(), NodeId(0));
        assert_eq!(ball.radius(), 1);
        assert_eq!(ball.node_count(), 4);
        assert!(ball.contains(NodeId(3)));
        assert!(!ball.contains(NodeId(4)));
        assert_eq!(ball.border_nodes(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(ball.distance(NodeId(0)), Some(0));
        assert_eq!(ball.distance(NodeId(3)), Some(1));
        assert_eq!(ball.distance(NodeId(5)), None);
        assert_eq!(ball.edge_count(&g), 3);
    }

    #[test]
    fn radius_zero_ball_is_single_node() {
        let g = star_plus_tail();
        let ball = Ball::new(&g, NodeId(4), 0);
        assert_eq!(ball.members(), &[NodeId(4)]);
        assert_eq!(ball.border_nodes(), vec![NodeId(4)]);
        assert_eq!(ball.edge_count(&g), 0);
    }

    #[test]
    fn ball_uses_undirected_distance() {
        let g = star_plus_tail();
        // Node 5 reaches node 4 and 3 via reversed edges.
        let ball = Ball::new(&g, NodeId(5), 2);
        assert!(ball.contains(NodeId(3)));
        assert!(!ball.contains(NodeId(0)));
    }

    #[test]
    fn large_radius_covers_component() {
        let g = star_plus_tail();
        let ball = Ball::new(&g, NodeId(2), 10);
        assert_eq!(ball.node_count(), 6);
        assert!(ball.border_nodes().is_empty());
        let (sub, mapping) = ball.to_graph(&g);
        assert_eq!(sub.node_count(), 6);
        assert_eq!(sub.edge_count(), 5);
        assert_eq!(mapping.len(), 6);
    }

    #[test]
    fn view_restricts_neighbors() {
        let g = star_plus_tail();
        let ball = Ball::new(&g, NodeId(0), 1);
        let view = ball.view(&g);
        assert_eq!(view.node_count(), 4);
        assert_eq!(view.out_neighbors(NodeId(3)).count(), 0); // 3 -> 4 leaves the ball
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_center_panics() {
        let g = star_plus_tail();
        let _ = Ball::new(&g, NodeId(42), 1);
    }
}

//! Balls `Ĝ[w, r]`: the radius-`r` undirected neighbourhood of a node.
//!
//! A ball is the subgraph of `G` whose nodes lie within undirected distance `r` of the
//! center `w` and whose edges are **all** edges of `G` between those nodes (Section 2.2 of
//! the paper). Border nodes — nodes at distance exactly `r` — are tracked because the
//! `dualFilter` optimisation (Fig. 5, Proposition 5) starts its removal process from them.

use crate::bitset::BitSet;
use crate::graph::{Graph, NodeId};
use crate::traversal::{bounded_bfs_undirected, UNREACHABLE};
use crate::view::{AdjView, GraphView};
use std::collections::VecDeque;

/// The ball `Ĝ[w, r]` of a data graph.
#[derive(Debug, Clone)]
pub struct Ball {
    center: NodeId,
    radius: usize,
    /// Members in BFS order from the center.
    members: Vec<NodeId>,
    /// Distance from the center for each entry of `members`.
    distances: Vec<u32>,
    /// Membership bitset over the *original* graph's node ids.
    membership: BitSet,
}

impl Ball {
    /// Builds the ball of radius `radius` centred at `center`.
    ///
    /// # Panics
    /// Panics when `center` is not a node of `graph`.
    pub fn new(graph: &Graph, center: NodeId, radius: usize) -> Self {
        assert!(
            graph.contains_node(center),
            "ball center {center} out of range"
        );
        let (members, distances) = bounded_bfs_undirected(graph, center, radius);
        let mut membership = BitSet::new(graph.node_count());
        for &m in &members {
            membership.insert(m.index());
        }
        Ball {
            center,
            radius,
            members,
            distances,
            membership,
        }
    }

    /// The ball center `w`.
    #[inline]
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// The ball radius `r`.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Nodes of the ball (original graph ids), in BFS order from the center.
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of nodes in the ball.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when `node` belongs to the ball.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.membership.contains(node.index())
    }

    /// Distance of `node` from the center, when the node is in the ball.
    pub fn distance(&self, node: NodeId) -> Option<usize> {
        self.members
            .iter()
            .position(|&m| m == node)
            .map(|i| self.distances[i] as usize)
    }

    /// Border nodes: members at distance exactly `radius` from the center.
    pub fn border_nodes(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .zip(&self.distances)
            .filter(|(_, &d)| d as usize == self.radius)
            .map(|(&m, _)| m)
            .collect()
    }

    /// Membership bitset over the original graph's node ids.
    #[inline]
    pub fn membership(&self) -> &BitSet {
        &self.membership
    }

    /// A [`GraphView`] of `graph` restricted to this ball.
    pub fn view<'a>(&'a self, graph: &'a Graph) -> GraphView<'a> {
        GraphView::restricted(graph, &self.membership)
    }

    /// Materialises the ball as a standalone graph; returns the graph and the mapping
    /// *new id → original id*. Mostly useful for presentation and tests — the matching
    /// algorithms use [`Ball::view`] instead.
    pub fn to_graph(&self, graph: &Graph) -> (Graph, Vec<NodeId>) {
        graph.induced_subgraph(&self.members)
    }

    /// Number of edges of the ball subgraph. `O(Σ deg)` over members.
    pub fn edge_count(&self, graph: &Graph) -> usize {
        self.members
            .iter()
            .map(|&u| graph.out_neighbors(u).filter(|v| self.contains(*v)).count())
            .sum()
    }

    /// Builds the dense-id [`CompactBall`] of this ball.
    pub fn to_compact(&self, graph: &Graph) -> CompactBall {
        CompactBall::from_members(
            graph,
            self.center,
            self.radius,
            &self.members,
            &self.distances,
            Vec::new(),
        )
    }
}

/// Reusable per-thread scratch space for [`CompactBall::build`].
///
/// Holds one `|V|`-sized distance array that is allocated once per worker thread and wiped
/// only at the indices a ball actually touched, so per-ball work stays `O(|ball|)` instead
/// of `O(|V|)`.
#[derive(Debug, Default)]
pub struct BallScratch {
    dist: Vec<u32>,
    /// Global id → local id map (`u32::MAX` = not a member), recycled between balls via
    /// [`CompactBall::recycle`] so only the touched entries are ever written or cleared.
    map: Vec<u32>,
}

impl BallScratch {
    /// Creates an empty scratch; storage is grown lazily on first use.
    pub fn new() -> Self {
        BallScratch {
            dist: Vec::new(),
            map: Vec::new(),
        }
    }
}

/// A ball with its nodes re-indexed densely as `0..|ball|`.
///
/// The matching engine runs (dual-)simulation refinement once per ball; doing that with
/// `|V|`-sized candidate bitsets made every ball pay for the whole graph. A `CompactBall`
/// holds only the member list — local ids are BFS positions in it — and
/// [`CompactBallView`] exposes the ball subgraph's
/// adjacency over local ids by filtering the original CSR lazily. The engine thus operates
/// on ball-sized bitsets and counters throughout without materialising per-ball adjacency,
/// translating to global ids only when a perfect subgraph is extracted.
#[derive(Debug, Clone)]
pub struct CompactBall {
    /// Local id → global id: the ball members in BFS order from the center.
    to_global: Vec<NodeId>,
    /// Global id → local id (`u32::MAX` = not a member). Sized to the underlying graph but
    /// borrowed from the scratch and cleared entry-by-entry on [`CompactBall::recycle`], so
    /// steady-state per-ball cost stays `O(|ball|)`.
    local_map: Vec<u32>,
    /// Local id of the ball center.
    center: NodeId,
    /// Global id of the ball center.
    center_global: NodeId,
    /// Local ids of the border nodes (distance exactly `radius`), ascending.
    border: Vec<NodeId>,
    /// Ball radius used during construction.
    radius: usize,
}

impl CompactBall {
    /// Builds the compact ball `Ĝ[center, radius]` directly, without an intermediate
    /// [`Ball`], reusing `scratch` across calls.
    ///
    /// # Panics
    /// Panics when `center` is not a node of `graph`.
    pub fn build(graph: &Graph, center: NodeId, radius: usize, scratch: &mut BallScratch) -> Self {
        assert!(
            graph.contains_node(center),
            "ball center {center} out of range"
        );
        if scratch.dist.len() < graph.node_count() {
            scratch.dist.resize(graph.node_count(), UNREACHABLE);
        }
        let dist = &mut scratch.dist;
        let mut members = Vec::new();
        let mut member_dist = Vec::new();
        let mut queue = VecDeque::new();
        dist[center.index()] = 0;
        members.push(center);
        member_dist.push(0u32);
        queue.push_back(center);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            if du as usize >= radius {
                continue;
            }
            for v in graph.out_neighbors(u).chain(graph.in_neighbors(u)) {
                if dist[v.index()] == UNREACHABLE {
                    dist[v.index()] = du + 1;
                    members.push(v);
                    member_dist.push(du + 1);
                    queue.push_back(v);
                }
            }
        }
        // Wipe only the touched entries so the scratch can be reused.
        for &m in &members {
            dist[m.index()] = UNREACHABLE;
        }
        let map = std::mem::take(&mut scratch.map);
        Self::from_members(graph, center, radius, &members, &member_dist, map)
    }

    /// Builds a compact ball from an externally maintained member list with per-member
    /// distances, reusing `scratch` like [`CompactBall::build`].
    ///
    /// This is the constructor used by incremental ball producers (`ssim_core`'s
    /// `BallForest`): they track membership and center distances across adjacent centers
    /// themselves and only need the dense re-indexing here. `members` may be in any order;
    /// local ids are the positions in `members`. `distances[i]` must be the undirected
    /// distance of `members[i]` from `center`, and `center` must appear in `members`.
    ///
    /// # Panics
    /// Panics when `center` is not listed in `members` or the slices disagree in length.
    pub fn from_parts(
        graph: &Graph,
        center: NodeId,
        radius: usize,
        members: &[NodeId],
        distances: &[u32],
        scratch: &mut BallScratch,
    ) -> Self {
        assert_eq!(
            members.len(),
            distances.len(),
            "one distance per ball member"
        );
        Self::from_parts_by(graph, center, radius, members, |_, i| distances[i], scratch)
    }

    /// [`CompactBall::from_parts`] with the distances supplied by a lookup instead of a
    /// slice: `dist_of(member, position)` returns the undirected center distance of
    /// `members[position]`.
    ///
    /// Incremental ball producers keep one `|V|`-sized distance array alive across
    /// centers; this constructor lets them remap straight out of it without collecting a
    /// per-ball distance vector first.
    ///
    /// # Panics
    /// Panics when `center` is not listed in `members`.
    pub fn from_parts_by(
        graph: &Graph,
        center: NodeId,
        radius: usize,
        members: &[NodeId],
        dist_of: impl Fn(NodeId, usize) -> u32,
        scratch: &mut BallScratch,
    ) -> Self {
        let map = std::mem::take(&mut scratch.map);
        let ball = Self::from_members_by(graph, center, radius, members, dist_of, map);
        assert!(
            ball.center.index() < members.len() && members[ball.center.index()] == center,
            "ball center {center} must be a member"
        );
        ball
    }

    /// Returns the ball's global→local map to `scratch` for the next build, clearing only
    /// the entries this ball set. Optional — a dropped ball simply costs the next build a
    /// fresh allocation — but the engine's per-ball loop always recycles.
    pub fn recycle(mut self, scratch: &mut BallScratch) {
        for &g in &self.to_global {
            self.local_map[g.index()] = u32::MAX;
        }
        scratch.map = self.local_map;
    }

    /// Builds a compact ball from an explicit member list with per-member distances.
    ///
    /// Local ids are the members' **BFS positions** (the center is local id 0) — no sort is
    /// performed per ball; consumers that need globally-ordered output sort once at
    /// extraction time. `map` is the (possibly recycled) global→local scratch map; it is
    /// grown to the graph's size and filled at the member indices.
    fn from_members(
        graph: &Graph,
        center: NodeId,
        radius: usize,
        members: &[NodeId],
        distances: &[u32],
        map: Vec<u32>,
    ) -> Self {
        Self::from_members_by(graph, center, radius, members, |_, i| distances[i], map)
    }

    /// [`CompactBall::from_members`] with looked-up distances (see
    /// [`CompactBall::from_parts_by`]).
    fn from_members_by(
        graph: &Graph,
        center: NodeId,
        radius: usize,
        members: &[NodeId],
        dist_of: impl Fn(NodeId, usize) -> u32,
        mut map: Vec<u32>,
    ) -> Self {
        let to_global: Vec<NodeId> = members.to_vec();
        if map.len() < graph.node_count() {
            map.resize(graph.node_count(), u32::MAX);
        }
        for (local, &g) in to_global.iter().enumerate() {
            map[g.index()] = local as u32;
        }
        // Members are listed in BFS order, so the border (distance == radius) occupies
        // ascending local positions already.
        let border: Vec<NodeId> = to_global
            .iter()
            .enumerate()
            .filter(|&(local, &g)| dist_of(g, local) as usize == radius)
            .map(|(local, _)| NodeId(local as u32))
            .collect();
        let center_local = NodeId(map[center.index()]);
        CompactBall {
            to_global,
            local_map: map,
            center: center_local,
            center_global: center,
            border,
            radius,
        }
    }

    /// An [`AdjView`] of the ball subgraph addressed by local ids.
    #[inline]
    pub fn view<'a>(&'a self, data: &'a Graph) -> CompactBallView<'a> {
        CompactBallView { ball: self, data }
    }

    /// Number of nodes in the ball.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.to_global.len()
    }

    /// Local id of the ball center.
    #[inline]
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// Global id of the ball center.
    #[inline]
    pub fn center_global(&self) -> NodeId {
        self.center_global
    }

    /// Ball radius used during construction.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Local ids of the border nodes (distance exactly `radius`), ascending.
    #[inline]
    pub fn border(&self) -> &[NodeId] {
        &self.border
    }

    /// Local id → global id mapping (members in BFS order from the center).
    #[inline]
    pub fn to_global(&self) -> &[NodeId] {
        &self.to_global
    }

    /// Global id of local node `local`.
    #[inline]
    pub fn global_of(&self, local: NodeId) -> NodeId {
        self.to_global[local.index()]
    }

    /// Local id of global node `global`, when it belongs to the ball. `O(1)`.
    #[inline]
    pub fn local_of(&self, global: NodeId) -> Option<NodeId> {
        match self.local_map.get(global.index()) {
            Some(&l) if l != u32::MAX => Some(NodeId(l)),
            _ => None,
        }
    }

    /// Number of ball edges (both endpoints inside). `O(Σ deg)` over members.
    pub fn edge_count(&self, data: &Graph) -> usize {
        self.to_global
            .iter()
            .map(|&g| {
                data.out_neighbors(g)
                    .filter(|w| self.local_of(*w).is_some())
                    .count()
            })
            .sum()
    }
}

/// The ball subgraph's adjacency over **local** ids, backed lazily by the original CSR.
///
/// Neighbour iteration maps each global neighbour into the ball with an `O(1)` lookup in
/// the ball's global→local map; nodes outside the ball are skipped. Since the matchers
/// only traverse the neighbourhoods of *candidate* nodes — typically a small fraction of
/// the ball — this is far cheaper than materialising the full ball adjacency up front.
#[derive(Clone, Copy)]
pub struct CompactBallView<'a> {
    ball: &'a CompactBall,
    data: &'a Graph,
}

impl CompactBallView<'_> {
    /// The compact ball this view reads.
    #[inline]
    pub fn ball(&self) -> &CompactBall {
        self.ball
    }
}

impl AdjView for CompactBallView<'_> {
    #[inline]
    fn id_space(&self) -> usize {
        self.ball.node_count()
    }

    #[inline]
    fn label(&self, node: NodeId) -> crate::labels::Label {
        self.data.label(self.ball.global_of(node))
    }

    #[inline]
    fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.data
            .out_neighbors(self.ball.global_of(node))
            .filter_map(|w| self.ball.local_of(w))
    }

    #[inline]
    fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.data
            .in_neighbors(self.ball.global_of(node))
            .filter_map(|w| self.ball.local_of(w))
    }

    #[inline]
    fn nodes_with_label(&self, label: crate::labels::Label) -> impl Iterator<Item = NodeId> + '_ {
        // The global label index is usually much smaller than the ball, so filtering it
        // through the membership search seeds candidates in O(|label nodes| · log |ball|).
        self.data
            .nodes_with_label(label)
            .iter()
            .filter_map(|&g| self.ball.local_of(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn star_plus_tail() -> Graph {
        // 0 is the hub of a star over 1..=3; 3 -> 4 -> 5 is a tail.
        Graph::from_edges(vec![Label(0); 6], &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)]).unwrap()
    }

    #[test]
    fn radius_one_ball() {
        let g = star_plus_tail();
        let ball = Ball::new(&g, NodeId(0), 1);
        assert_eq!(ball.center(), NodeId(0));
        assert_eq!(ball.radius(), 1);
        assert_eq!(ball.node_count(), 4);
        assert!(ball.contains(NodeId(3)));
        assert!(!ball.contains(NodeId(4)));
        assert_eq!(ball.border_nodes(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(ball.distance(NodeId(0)), Some(0));
        assert_eq!(ball.distance(NodeId(3)), Some(1));
        assert_eq!(ball.distance(NodeId(5)), None);
        assert_eq!(ball.edge_count(&g), 3);
    }

    #[test]
    fn radius_zero_ball_is_single_node() {
        let g = star_plus_tail();
        let ball = Ball::new(&g, NodeId(4), 0);
        assert_eq!(ball.members(), &[NodeId(4)]);
        assert_eq!(ball.border_nodes(), vec![NodeId(4)]);
        assert_eq!(ball.edge_count(&g), 0);
    }

    #[test]
    fn ball_uses_undirected_distance() {
        let g = star_plus_tail();
        // Node 5 reaches node 4 and 3 via reversed edges.
        let ball = Ball::new(&g, NodeId(5), 2);
        assert!(ball.contains(NodeId(3)));
        assert!(!ball.contains(NodeId(0)));
    }

    #[test]
    fn large_radius_covers_component() {
        let g = star_plus_tail();
        let ball = Ball::new(&g, NodeId(2), 10);
        assert_eq!(ball.node_count(), 6);
        assert!(ball.border_nodes().is_empty());
        let (sub, mapping) = ball.to_graph(&g);
        assert_eq!(sub.node_count(), 6);
        assert_eq!(sub.edge_count(), 5);
        assert_eq!(mapping.len(), 6);
    }

    #[test]
    fn view_restricts_neighbors() {
        let g = star_plus_tail();
        let ball = Ball::new(&g, NodeId(0), 1);
        let view = ball.view(&g);
        assert_eq!(view.node_count(), 4);
        assert_eq!(view.out_neighbors(NodeId(3)).count(), 0); // 3 -> 4 leaves the ball
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_center_panics() {
        let g = star_plus_tail();
        let _ = Ball::new(&g, NodeId(42), 1);
    }

    #[test]
    fn compact_ball_matches_ball_view() {
        let g = star_plus_tail();
        let mut scratch = BallScratch::new();
        for center in g.nodes() {
            for radius in 0..3 {
                let ball = Ball::new(&g, center, radius);
                let compact = CompactBall::build(&g, center, radius, &mut scratch);
                assert_eq!(compact.node_count(), ball.node_count());
                assert_eq!(compact.edge_count(&g), ball.edge_count(&g));
                assert_eq!(compact.global_of(compact.center()), center);
                assert_eq!(compact.center_global(), center);
                assert_eq!(compact.radius(), radius);
                // to_compact from an existing ball agrees with the direct construction.
                let via_ball = ball.to_compact(&g);
                assert_eq!(via_ball.to_global(), compact.to_global());
                assert_eq!(via_ball.border(), compact.border());
                // The center is always local id 0 (BFS starts there).
                assert_eq!(compact.center(), NodeId(0));
                // Border sets agree modulo the id translation.
                let mut ball_border = ball.border_nodes();
                ball_border.sort_unstable();
                let mut compact_border: Vec<NodeId> = compact
                    .border()
                    .iter()
                    .map(|&l| compact.global_of(l))
                    .collect();
                compact_border.sort_unstable();
                assert_eq!(compact_border, ball_border);
                // Local adjacency (via the lazy view) mirrors the restricted view's.
                let view = ball.view(&g);
                let local_view = compact.view(&g);
                for local in (0..compact.node_count()).map(NodeId::from_index) {
                    let global = compact.global_of(local);
                    assert_eq!(AdjView::label(&local_view, local), g.label(global));
                    let mut expected: Vec<NodeId> = view.out_neighbors(global).collect();
                    expected.sort_unstable();
                    let mut actual: Vec<NodeId> = local_view
                        .out_neighbors(local)
                        .map(|l| compact.global_of(l))
                        .collect();
                    actual.sort_unstable();
                    assert_eq!(
                        actual, expected,
                        "adjacency of {global} in ball({center},{radius})"
                    );
                    let mut expected_in: Vec<NodeId> = view.in_neighbors(global).collect();
                    expected_in.sort_unstable();
                    let mut actual_in: Vec<NodeId> = local_view
                        .in_neighbors(local)
                        .map(|l| compact.global_of(l))
                        .collect();
                    actual_in.sort_unstable();
                    assert_eq!(actual_in, expected_in);
                }
                // Label seeding through the view agrees with a direct scan.
                for label in [Label(0), Label(7)] {
                    let mut seeded: Vec<NodeId> = local_view
                        .nodes_with_label(label)
                        .map(|l| compact.global_of(l))
                        .collect();
                    seeded.sort_unstable();
                    let expected: Vec<NodeId> = view.nodes_with_label(label).collect();
                    assert_eq!(seeded, expected);
                }
            }
        }
    }

    #[test]
    fn compact_ball_roundtrips_ids() {
        let g = star_plus_tail();
        let mut scratch = BallScratch::new();
        let compact = CompactBall::build(&g, NodeId(3), 1, &mut scratch);
        for local in (0..compact.node_count()).map(NodeId::from_index) {
            assert_eq!(compact.local_of(compact.global_of(local)), Some(local));
        }
        assert_eq!(compact.local_of(NodeId(42)), None);
        // Scratch is reusable: a second build from the same scratch is identical.
        let again = CompactBall::build(&g, NodeId(3), 1, &mut scratch);
        assert_eq!(again.to_global(), compact.to_global());
    }
}

//! Node labels and label interning.
//!
//! The paper models node attributes as labels drawn from a (possibly infinite) alphabet Σ.
//! Internally every label is a small integer ([`Label`]); the [`LabelInterner`] maps between
//! human-readable strings (e.g. `"Bio"`, `"HR"`, `"DM"`) and those integers.

use std::collections::HashMap;
use std::fmt;

/// A node label: an interned identifier into a [`LabelInterner`] or a raw synthetic label id.
///
/// Labels are plain `u32`s so that label comparison — the single most frequent operation in
/// every simulation algorithm — is a register compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl Label {
    /// Returns the raw integer value of this label.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label(v)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Bidirectional mapping between label strings and [`Label`] ids.
///
/// Interning is only used at graph-construction and presentation time; the matching
/// algorithms themselves never touch strings.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    by_name: HashMap<String, Label>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing label if it was seen before.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let label = Label(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), label);
        label
    }

    /// Looks up a label by name without interning.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `label`, if it was interned through this interner.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.index()).map(String::as_str)
    }

    /// Returns the name of `label`, or a synthetic `L<id>` string for labels that were never
    /// interned (e.g. labels of synthetic graphs).
    pub fn display(&self, label: Label) -> String {
        self.name(label)
            .map(str::to_string)
            .unwrap_or_else(|| label.to_string())
    }

    /// Number of distinct interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned `(label, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("Bio");
        let b = interner.intern("HR");
        let a2 = interner.intern("Bio");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn lookup_by_name_and_id() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("DM");
        assert_eq!(interner.get("DM"), Some(a));
        assert_eq!(interner.get("AI"), None);
        assert_eq!(interner.name(a), Some("DM"));
        assert_eq!(interner.name(Label(99)), None);
    }

    #[test]
    fn display_falls_back_to_synthetic_name() {
        let interner = LabelInterner::new();
        assert_eq!(interner.display(Label(7)), "L7");
        assert!(interner.is_empty());
    }

    #[test]
    fn iter_preserves_order() {
        let mut interner = LabelInterner::new();
        interner.intern("a");
        interner.intern("b");
        let collected: Vec<_> = interner.iter().map(|(l, n)| (l.0, n.to_string())).collect();
        assert_eq!(collected, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn label_ordering_and_index() {
        assert!(Label(1) < Label(2));
        assert_eq!(Label(5).index(), 5);
        assert_eq!(Label::from(3u32), Label(3));
    }
}

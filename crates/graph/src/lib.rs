//! Graph substrate for the strong-simulation reproduction.
//!
//! This crate provides the data-graph and pattern-graph machinery that the paper
//! *"Capturing Topology in Graph Pattern Matching"* (Ma, Cao, Fan, Huai, Wo — VLDB 2011)
//! relies on:
//!
//! * node-labelled directed graphs stored in a compact CSR form with both forward and
//!   reverse adjacency ([`Graph`], [`GraphBuilder`]),
//! * pattern graphs with connectivity validation and pre-computed diameter ([`Pattern`]),
//! * balls `Ĝ[w, r]` — the radius-`r` undirected neighbourhood of a node — with border-node
//!   marking ([`Ball`]),
//! * undirected connected components and Tarjan strongly connected components
//!   ([`components`]),
//! * distance / diameter / cycle utilities ([`metrics`], [`cycles`]),
//! * a tiny dense [`bitset::BitSet`] and [`view::GraphView`] used by the matching
//!   algorithms in `ssim-core`.
//!
//! The representation favours dense, index-addressed vectors over hash maps on the hot
//! paths, following the performance guidance for database-style Rust code.
//!
//! # Quick example
//!
//! ```
//! use ssim_graph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new();
//! let hr = b.add_node("HR");
//! let se = b.add_node("SE");
//! let bio = b.add_node("Bio");
//! b.add_edge(hr, se);
//! b.add_edge(hr, bio);
//! b.add_edge(se, bio);
//! let g = b.build();
//!
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.edge_count(), 3);
//! assert_eq!(g.out_neighbors(hr).count(), 2);
//! assert_eq!(g.in_neighbors(bio).collect::<Vec<NodeId>>(), vec![hr, se]);
//! ```

pub mod ball;
pub mod bitset;
pub mod builder;
pub mod components;
pub mod cycles;
pub mod delta;
pub mod error;
pub mod graph;
pub mod io;
pub mod labels;
pub mod metrics;
pub mod overlay;
pub mod pattern;
pub mod subgraph;
pub mod traversal;
pub mod view;

pub use ball::{Ball, BallScratch, CompactBall, CompactBallView};
pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use delta::{DeltaTarget, GraphDelta};
pub use error::GraphError;
pub use graph::{Graph, NodeId};
pub use labels::{Label, LabelInterner};
pub use overlay::{CompactionPolicy, GraphEpoch, OverlayGraph, SnapshotHandle, VersionedGraph};
pub use pattern::Pattern;
pub use subgraph::ExtractedSubgraph;
pub use view::{AdjView, GraphView};

//! Textual graph serialization: a simple labelled edge-list format and GraphViz DOT output.
//!
//! The edge-list format is line oriented:
//!
//! ```text
//! # comment
//! v <id> <label>
//! e <source-id> <target-id>
//! ```
//!
//! Node ids must be dense `0..n` integers (any order); labels are free-form tokens without
//! whitespace. This is the interchange format used by the examples and by the experiment
//! harness when dumping generated workloads.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::labels::LabelInterner;
use std::fmt::Write as _;

/// Parses the labelled edge-list format described in the module docs.
pub fn parse_edge_list(text: &str) -> Result<(Graph, LabelInterner), GraphError> {
    // First pass: collect node declarations so ids can be validated and ordered densely.
    let mut nodes: Vec<(u32, String)> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let id = parse_u32(parts.next(), lineno, "node id")?;
                let label = parts.next().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    message: "missing node label".into(),
                })?;
                nodes.push((id, label.to_string()));
            }
            Some("e") => {
                let s = parse_u32(parts.next(), lineno, "edge source")?;
                let t = parse_u32(parts.next(), lineno, "edge target")?;
                edges.push((s, t));
            }
            Some(other) => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unknown record type {other:?} (expected 'v' or 'e')"),
                })
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    nodes.sort_by_key(|(id, _)| *id);
    for (expected, (id, _)) in nodes.iter().enumerate() {
        if *id as usize != expected {
            return Err(GraphError::Parse {
                line: 0,
                message: format!("node ids must be dense 0..n, missing or duplicate id {expected}"),
            });
        }
    }
    let mut builder = GraphBuilder::with_capacity(nodes.len(), edges.len());
    for (_, label) in &nodes {
        builder.add_node(label);
    }
    for (s, t) in edges {
        builder.try_add_edge(NodeId(s), NodeId(t))?;
    }
    Ok(builder.build_with_interner())
}

fn parse_u32(tok: Option<&str>, line: usize, what: &str) -> Result<u32, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse::<u32>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} {tok:?} (expected unsigned integer)"),
    })
}

/// Serialises a graph to the labelled edge-list format.
pub fn to_edge_list(graph: &Graph, interner: &LabelInterner) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    for v in graph.nodes() {
        let _ = writeln!(out, "v {} {}", v.0, interner.display(graph.label(v)));
    }
    for (s, t) in graph.edges() {
        let _ = writeln!(out, "e {} {}", s.0, t.0);
    }
    out
}

/// Renders a graph in GraphViz DOT syntax (directed), labelling nodes as `id:label`.
pub fn to_dot(graph: &Graph, interner: &LabelInterner, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    for v in graph.nodes() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}:{}\"];",
            v.0,
            v.0,
            interner.display(graph.label(v))
        );
    }
    for (s, t) in graph.edges() {
        let _ = writeln!(out, "  n{} -> n{};", s.0, t.0);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    #[test]
    fn roundtrip_edge_list() {
        let text = "\
# a tiny graph
v 0 HR
v 1 SE
v 2 Bio
e 0 1
e 0 2
e 1 2
";
        let (g, interner) = parse_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(interner.name(g.label(NodeId(2))), Some("Bio"));
        let serialized = to_edge_list(&g, &interner);
        let (g2, _) = parse_edge_list(&serialized).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn nodes_may_appear_out_of_order() {
        let text = "v 1 B\nv 0 A\ne 0 1\n";
        let (g, interner) = parse_edge_list(text).unwrap();
        assert_eq!(interner.name(g.label(NodeId(0))), Some("A"));
        assert_eq!(interner.name(g.label(NodeId(1))), Some("B"));
    }

    #[test]
    fn parse_rejects_bad_records() {
        assert!(matches!(
            parse_edge_list("x 1 2\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("v abc L\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("v 0\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("e 0\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn parse_rejects_sparse_node_ids() {
        let err = parse_edge_list("v 0 A\nv 2 B\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn parse_rejects_edges_to_unknown_nodes() {
        let err = parse_edge_list("v 0 A\ne 0 5\n").unwrap_err();
        assert!(matches!(err, GraphError::InvalidNode { node: 5, .. }));
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let g = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let interner = LabelInterner::new();
        let dot = to_dot(&g, &interner, "demo");
        assert!(dot.starts_with("digraph demo {"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n0 [label=\"0:L0\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }
}

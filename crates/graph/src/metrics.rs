//! Graph metrics: eccentricity, diameter, degree statistics.
//!
//! The diameter `dQ` of the (connected) pattern graph determines the ball radius used by
//! strong simulation, and Proposition 3 bounds every perfect subgraph's diameter by `2·dQ`.
//! Distances are undirected, per Section 2.1.

use crate::graph::{Graph, NodeId};
use crate::traversal::{bfs_distances, Direction, UNREACHABLE};

/// Eccentricity of `node`: the largest undirected distance from `node` to any node reachable
/// from it. Returns 0 for an isolated node.
pub fn eccentricity(graph: &Graph, node: NodeId) -> usize {
    bfs_distances(graph, node, Direction::Undirected)
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .map(|&d| d as usize)
        .max()
        .unwrap_or(0)
}

/// Diameter of the graph: the longest shortest undirected distance between any pair of nodes
/// in the same connected component.
///
/// For a disconnected graph this returns the maximum diameter over its components (the value
/// used when treating each component independently); the paper only ever takes diameters of
/// connected pattern graphs, where the two notions coincide. The empty graph has diameter 0.
pub fn diameter(graph: &Graph) -> usize {
    graph
        .nodes()
        .map(|v| eccentricity(graph, v))
        .max()
        .unwrap_or(0)
}

/// Diameter of the subgraph induced by `nodes` (undirected distances measured inside that
/// subgraph). Used to verify Proposition 3 on perfect subgraphs.
pub fn induced_diameter(graph: &Graph, nodes: &[NodeId]) -> usize {
    let (sub, _) = graph.induced_subgraph(nodes);
    diameter(&sub)
}

/// Summary statistics about node degrees, used when reporting generated workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum total degree.
    pub min: usize,
    /// Maximum total degree.
    pub max: usize,
    /// Average total degree (in-degree plus out-degree).
    pub mean: f64,
    /// Average out-degree, i.e. `|E| / |V|`.
    pub mean_out: f64,
}

/// Computes [`DegreeStats`] for the graph. Returns zeros for the empty graph.
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.node_count();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            mean_out: 0.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut total = 0usize;
    for v in graph.nodes() {
        let d = graph.degree(v);
        min = min.min(d);
        max = max.max(d);
        total += d;
    }
    DegreeStats {
        min,
        max,
        mean: total as f64 / n as f64,
        mean_out: graph.edge_count() as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn path(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(vec![Label(0); n], &edges).unwrap()
    }

    #[test]
    fn path_diameter_and_eccentricity() {
        let g = path(5);
        assert_eq!(diameter(&g), 4);
        assert_eq!(eccentricity(&g, NodeId(0)), 4);
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
    }

    #[test]
    fn directed_cycle_diameter_uses_undirected_distance() {
        // Directed 4-cycle: undirected diameter is 2 even though directed distance can be 3.
        let g = Graph::from_edges(vec![Label(0); 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(diameter(&g), 2);
    }

    #[test]
    fn disconnected_graph_takes_max_component_diameter() {
        let g = Graph::from_edges(vec![Label(0); 6], &[(0, 1), (1, 2), (2, 3), (4, 5)]).unwrap();
        assert_eq!(diameter(&g), 3);
    }

    #[test]
    fn single_node_and_empty() {
        let single = Graph::from_edges(vec![Label(0)], &[]).unwrap();
        assert_eq!(diameter(&single), 0);
        assert_eq!(eccentricity(&single, NodeId(0)), 0);
        let empty = Graph::from_edges(vec![], &[]).unwrap();
        assert_eq!(diameter(&empty), 0);
    }

    #[test]
    fn induced_diameter_of_subset() {
        let g = path(6);
        // Nodes {0,1,2} form a path of diameter 2; {0, 5} are disconnected when induced.
        assert_eq!(induced_diameter(&g, &[NodeId(0), NodeId(1), NodeId(2)]), 2);
        assert_eq!(induced_diameter(&g, &[NodeId(0), NodeId(5)]), 0);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(vec![Label(0); 4], &[(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        let stats = degree_stats(&g);
        assert_eq!(stats.max, 3); // node 0 has out-degree 3
        assert_eq!(stats.min, 1); // node 3 has a single incoming edge
        assert!((stats.mean - 2.0).abs() < 1e-9);
        assert!((stats.mean_out - 1.0).abs() < 1e-9);
        let empty = Graph::from_edges(vec![], &[]).unwrap();
        assert_eq!(
            degree_stats(&empty),
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                mean_out: 0.0
            }
        );
    }
}

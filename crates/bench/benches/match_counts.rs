//! Figures 7(i)–7(n): matched-subgraph counts while varying the pattern size.
//!
//! Times the matchers whose subgraph counts the figures report (TALE, MCS, VF2, Match) for
//! two pattern sizes per dataset, mirroring the |Vq| sweep of the paper at bench scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssim_bench::workload_sized;
use ssim_experiments::algorithms::{run_algorithm, AlgorithmKind};
use ssim_experiments::workloads::DatasetKind;
use std::time::Duration;

fn bench_match_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7i-7n_match_counts");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let algorithms = [
        AlgorithmKind::Tale,
        AlgorithmKind::Mcs,
        AlgorithmKind::Vf2,
        AlgorithmKind::Match,
    ];
    for dataset in [DatasetKind::AmazonLike, DatasetKind::Synthetic] {
        for pattern_nodes in [4usize, 8] {
            let w = workload_sized(dataset, 400, pattern_nodes);
            for kind in algorithms {
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{}_{}", kind.name(), dataset.name()),
                        format!("Vq={pattern_nodes}"),
                    ),
                    &w,
                    |b, w| b.iter(|| run_algorithm(kind, &w.pattern, &w.data).subgraph_count),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_match_counts);
criterion_main!(benches);

//! Figures 8(a)–8(d): running time while varying the pattern (size and density).
//!
//! Reproduced shape: VF2 is far slower than the simulation family and degrades sharply with
//! |Vq|; Sim is the fastest; Match+ sits between Sim and Match at roughly two thirds of
//! Match's time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssim_bench::workload_sized;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_experiments::algorithms::{run_algorithm, AlgorithmKind};
use ssim_experiments::workloads::{density_pattern, DatasetKind};
use std::time::Duration;

/// Figures 8(a)/(b)/(c): vary |Vq| on each dataset family.
fn bench_vary_pattern_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a-8c_time_vs_pattern_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for dataset in DatasetKind::all() {
        for pattern_nodes in [4usize, 8] {
            let w = workload_sized(dataset, 400, pattern_nodes);
            // The paper only runs VF2 on the small real-life graphs.
            let include_vf2 = dataset != DatasetKind::Synthetic;
            for kind in AlgorithmKind::performance_set(include_vf2) {
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{}_{}", kind.name(), dataset.name()),
                        format!("Vq={pattern_nodes}"),
                    ),
                    &w,
                    |b, w| b.iter(|| run_algorithm(kind, &w.pattern, &w.data)),
                );
            }
        }
    }
    group.finish();
}

/// Figure 8(d): vary the pattern density αq on synthetic data (Sim / Match / Match+ only).
fn bench_vary_pattern_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8d_time_vs_pattern_density");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let data = DatasetKind::Synthetic.generate(400, 42);
    for alpha_q in [1.05f64, 1.35] {
        let pattern = density_pattern(&data, 6, alpha_q, 3);
        for (name, config) in [
            ("Match", MatchConfig::basic()),
            ("Match+", MatchConfig::optimized()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("alpha_q={alpha_q}")),
                &(&pattern, &data),
                |b, (pattern, data)| b.iter(|| strong_simulation(pattern, data, &config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_pattern_size, bench_vary_pattern_density);
criterion_main!(benches);

//! Optimisation ablation (Section 4.2 / Exp-2 point (3)).
//!
//! Reproduced claim: the optimisations — query minimization, dual-simulation filtering and
//! connectivity pruning — cut about one third of `Match`'s running time; the bench times the
//! plain matcher, each optimisation in isolation and the combined `Match+`, plus the two
//! building blocks the optimisations rely on (global dual simulation and `minQ`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssim_bench::{workload, BenchWorkload};
use ssim_core::dual::dual_simulation;
use ssim_core::minimize::minimize_pattern;
use ssim_core::strong::strong_simulation;
use ssim_experiments::ablation::variants;
use ssim_experiments::workloads::DatasetKind;
use std::time::Duration;

fn bench_match_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_match_variants");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for dataset in [DatasetKind::AmazonLike, DatasetKind::Synthetic] {
        let BenchWorkload { data, pattern, .. } = workload(dataset);
        for variant in variants() {
            group.bench_with_input(
                BenchmarkId::new(variant.name, dataset.name()),
                &(&pattern, &data),
                |b, (pattern, data)| b.iter(|| strong_simulation(pattern, data, &variant.config)),
            );
        }
    }
    group.finish();
}

fn bench_building_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_building_blocks");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let BenchWorkload { data, pattern, .. } = workload(DatasetKind::AmazonLike);
    group.bench_function("global_dual_simulation", |b| {
        b.iter(|| dual_simulation(&pattern, &data))
    });
    group.bench_function("minQ", |b| b.iter(|| minimize_pattern(&pattern)));
    group.finish();
}

criterion_group!(benches, bench_match_variants, bench_building_blocks);
criterion_main!(benches);

//! Figures 7(c)–7(h): the match-quality (closeness) experiments.
//!
//! The measured quantity in the paper is the closeness ratio, which is computed by the
//! experiment harness (`ssim-experiments::closeness`); what this bench times is the cost of
//! producing the matches each closeness value is derived from, per algorithm and dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssim_bench::{workload, BenchWorkload};
use ssim_experiments::algorithms::{run_algorithm, AlgorithmKind};
use ssim_experiments::workloads::DatasetKind;
use std::time::Duration;

fn bench_closeness(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7c-7h_closeness");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for dataset in DatasetKind::all() {
        let BenchWorkload { data, pattern, .. } = workload(dataset);
        for kind in AlgorithmKind::quality_set() {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), dataset.name()),
                &(&pattern, &data),
                |b, (pattern, data)| b.iter(|| run_algorithm(kind, pattern, data)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_closeness);
criterion_main!(benches);

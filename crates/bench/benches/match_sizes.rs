//! Table 3: size distribution of the matched subgraphs returned by `Match`.
//!
//! Times the production of the size histogram per dataset family (the strong-simulation run
//! plus the bucketing), which is what regenerating Table 3 costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssim_experiments::match_sizes::size_distribution;
use ssim_experiments::scale::ExperimentScale;
use ssim_experiments::workloads::DatasetKind;
use std::time::Duration;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_match_sizes");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let mut scale = ExperimentScale::tiny();
    scale.data_nodes = 300;
    scale.fixed_pattern_size = 5;
    for dataset in DatasetKind::all() {
        group.bench_with_input(
            BenchmarkId::new("Match", dataset.name()),
            &dataset,
            |b, &d| b.iter(|| size_distribution(d, &scale)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);

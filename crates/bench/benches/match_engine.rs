//! Engine trajectory bench: times the matching engine's configurations on the standard
//! workload and emits `BENCH_match.json` at the workspace root so future engine work has a
//! baseline to beat.
//!
//! Configurations measured, on `workload()` at `BENCH_NODES` for every dataset family:
//!
//! * `seed/match` — the seed's engine (naive fixpoint, sequential, `|V|`-sized ball
//!   relations) running plain `Match`,
//! * `seed/match_plus` — the seed's engine running `Match+`,
//! * `engine/match` — worklist + compact balls + parallel running plain `Match`,
//! * `engine/match_plus` — the full fast engine running `Match+`.
//!
//! For each configuration the JSON records mean seconds per run, processed balls per
//! second and data nodes per second, plus the speedup of the fast engine over the seed
//! engine. Run with `cargo bench --bench match_engine`.

use ssim_bench::{workload, BenchWorkload, BENCH_NODES, BENCH_PATTERN_NODES};
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_experiments::workloads::DatasetKind;
use std::time::Instant;

/// One measured configuration.
struct ConfigResult {
    name: &'static str,
    seconds: f64,
    balls_per_sec: f64,
    nodes_per_sec: f64,
    subgraphs: usize,
    matched_nodes: usize,
}

/// Times `runs` executions after one warm-up and returns the mean seconds plus the output.
fn time_config(
    pattern: &ssim_graph::Pattern,
    data: &ssim_graph::Graph,
    config: &MatchConfig,
    runs: usize,
) -> (f64, MatchOutput) {
    let warmup = strong_simulation(pattern, data, config);
    let start = Instant::now();
    for _ in 0..runs {
        let out = strong_simulation(pattern, data, config);
        assert_eq!(
            out.subgraphs.len(),
            warmup.subgraphs.len(),
            "nondeterministic output"
        );
    }
    (start.elapsed().as_secs_f64() / runs as f64, warmup)
}

fn measure(
    name: &'static str,
    w: &BenchWorkload,
    config: &MatchConfig,
    runs: usize,
) -> ConfigResult {
    let (seconds, out) = time_config(&w.pattern, &w.data, config, runs);
    ConfigResult {
        name,
        seconds,
        balls_per_sec: out.stats.balls_processed as f64 / seconds,
        nodes_per_sec: w.data.node_count() as f64 / seconds,
        subgraphs: out.subgraphs.len(),
        matched_nodes: out.matched_node_count(),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    // `cargo test` may execute bench targets in test mode; only benchmark under
    // `cargo bench`.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let runs = 3usize;
    let threads = ssim_core::parallel::available_threads();
    let configs: [(&'static str, MatchConfig); 4] = [
        ("seed/match", MatchConfig::seed_reference()),
        (
            "seed/match_plus",
            MatchConfig {
                minimize_query: true,
                dual_filter: true,
                connectivity_pruning: true,
                ..MatchConfig::seed_reference()
            },
        ),
        ("engine/match", MatchConfig::basic()),
        ("engine/match_plus", MatchConfig::optimized()),
    ];

    let mut dataset_blobs = Vec::new();
    for dataset in DatasetKind::all() {
        let w = workload(dataset);
        eprintln!(
            "dataset {} : |V|={} |E|={} pattern |Vq|={} dQ={}",
            dataset.name(),
            w.data.node_count(),
            w.data.edge_count(),
            w.pattern.node_count(),
            w.pattern.diameter()
        );
        let results: Vec<ConfigResult> = configs
            .iter()
            .map(|(name, config)| measure(name, &w, config, runs))
            .collect();
        // Headline: the optimised matcher on the new engine vs the seed's naive
        // sequential engine (its shipped `Match`). Same-configuration ratios are also
        // recorded so engine regressions stay visible.
        let headline = results[0].seconds / results[3].seconds;
        let speedup_plus = results[1].seconds / results[3].seconds;
        let speedup_basic = results[0].seconds / results[2].seconds;
        for r in &results {
            eprintln!(
                "  {:<18} {:>10.4} ms/run  {:>12.0} balls/s  {:>12.0} nodes/s  ({} subgraphs)",
                r.name,
                r.seconds * 1e3,
                r.balls_per_sec,
                r.nodes_per_sec,
                r.subgraphs
            );
        }
        eprintln!(
            "  speedup: Match+ vs seed engine {headline:.2}x (same-config: Match {speedup_basic:.2}x, Match+ {speedup_plus:.2}x)"
        );
        let config_json: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "      {{\"name\": \"{}\", \"seconds_per_run\": {:.6}, ",
                        "\"balls_per_sec\": {:.1}, \"nodes_per_sec\": {:.1}, ",
                        "\"subgraphs\": {}, \"matched_nodes\": {}}}"
                    ),
                    json_escape(r.name),
                    r.seconds,
                    r.balls_per_sec,
                    r.nodes_per_sec,
                    r.subgraphs,
                    r.matched_nodes
                )
            })
            .collect();
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": {}, \"pattern_diameter\": {},\n",
                "     \"speedup_match_plus_vs_seed_engine\": {:.3},\n",
                "     \"speedup_match_same_config\": {:.3}, ",
                "\"speedup_match_plus_same_config\": {:.3},\n",
                "     \"configs\": [\n{}\n    ]}}"
            ),
            json_escape(dataset.name()),
            w.data.node_count(),
            w.data.edge_count(),
            w.pattern.node_count(),
            w.pattern.diameter(),
            headline,
            speedup_basic,
            speedup_plus,
            config_json.join(",\n")
        ));
    }

    // Cascade stress: a self-loop pattern over a long path forces the refinement to strip
    // the candidate set one layer per pass, the worst case the worklist engine exists for.
    // `Match+` computes the (empty) global dual-simulation relation and skips every ball,
    // so this row isolates the refinement algorithms.
    {
        let n = 4000u32;
        let pattern =
            ssim_graph::Pattern::from_edges(vec![ssim_graph::Label(0)], &[(0, 0)]).unwrap();
        let chain = ssim_graph::Graph::from_edges(
            vec![ssim_graph::Label(0); n as usize],
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
        .unwrap();
        let seed_cfg = MatchConfig {
            minimize_query: true,
            dual_filter: true,
            connectivity_pruning: true,
            ..MatchConfig::seed_reference()
        };
        let (seed_secs, seed_out) = time_config(&pattern, &chain, &seed_cfg, runs);
        let (engine_secs, engine_out) =
            time_config(&pattern, &chain, &MatchConfig::optimized(), runs);
        assert_eq!(seed_out.subgraphs.len(), engine_out.subgraphs.len());
        // Unlike the dataset rows' cross-config headline, this is a *same-config*
        // comparison (Match+ on both engines), isolating the refinement algorithm.
        let cascade_speedup = seed_secs / engine_secs;
        eprintln!(
            "cascade chain n={n}: seed {:.3} ms, engine {:.3} ms — {cascade_speedup:.1}x (same-config Match+)",
            seed_secs * 1e3,
            engine_secs * 1e3
        );
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"cascade-chain\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": 1, \"pattern_diameter\": 0,\n",
                "     \"speedup_match_plus_same_config\": {:.3},\n",
                "     \"configs\": [\n",
                "      {{\"name\": \"seed/match_plus\", \"seconds_per_run\": {:.6}}},\n",
                "      {{\"name\": \"engine/match_plus\", \"seconds_per_run\": {:.6}}}\n",
                "    ]}}"
            ),
            n,
            n - 1,
            cascade_speedup,
            seed_secs,
            engine_secs
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"match_engine\",\n  \"bench_nodes\": {},\n",
            "  \"bench_pattern_nodes\": {},\n  \"runs_per_config\": {},\n",
            "  \"threads\": {},\n  \"datasets\": [\n{}\n  ]\n}}\n"
        ),
        BENCH_NODES,
        BENCH_PATTERN_NODES,
        runs,
        threads,
        dataset_blobs.join(",\n")
    );

    // Emit at the workspace root: crates/bench/../../BENCH_match.json.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_match.json");
    std::fs::write(&path, &json).expect("write BENCH_match.json");
    eprintln!("wrote {}", path.display());
}

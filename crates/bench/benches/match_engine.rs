//! Engine trajectory bench: times the matching engine's configurations on the standard
//! workload and emits `BENCH_match.json` at the workspace root so future engine work has a
//! baseline to beat.
//!
//! Configurations measured, on `workload()` at `BENCH_NODES` for every dataset family:
//!
//! * `seed/match` — the seed's engine (naive fixpoint, sequential, `|V|`-sized ball
//!   relations) running plain `Match`,
//! * `seed/match_plus` — the seed's engine running `Match+`,
//! * `engine/match` — worklist + compact balls + sliding `BallForest` + warm-started
//!   refinement + parallel running plain `Match`,
//! * `engine/match_plus` — the full fast engine running `Match+`,
//! * `engine/match_freshballs` — the fast engine with `BallStrategy::FreshBfs`, isolating
//!   the ball-reuse layer: `ball_reuse` records its time over `engine/match`'s plus the
//!   fraction of balls the forest reused,
//! * `engine/match_scratch` — the fast engine with `RefineSeed::FromScratch`, isolating
//!   the warm-start layer: `refine_warm` records its time over `engine/match`'s, the
//!   fraction of balls warm-started, and the seeded-worklist size ratio (delta suspects
//!   vs full start relations),
//! * `engine/match_plus_fullballs` — `Match+` with `BallSubstrate::FullGraph`, isolating
//!   the match-graph ball substrate: `gm_substrate` records its time over
//!   `engine/match_plus`'s plus the fraction of `|V|` the extracted `Gm` holds.
//!
//! Two high-overlap rows (`overlap-chain`, `overlap-cluster`) stress the sliding forest
//! where adjacent centers share most of their balls — the workloads the incremental
//! strategy and the warm-start layer exist for. A `selective-labels` row (match-graph
//! fraction below 10 % of `|V|`) stresses the `Gm` substrate, whose ball cost tracks the
//! candidate density instead of the mesh degree. Four update-stream rows
//! (`update-overlap-chain-*`, `update-selective-labels-*` at 1 % / 5 % edge churn)
//! stress the incremental matcher: each `incremental_update` blob records the
//! dirty-ball fraction and the speedup of `UpdatePlan::Incremental` over the
//! `UpdatePlan::Recompute` oracle across a six-delta stream. A `repeated-labels` row
//! (equal-label community corpus) prices the sixth oracle axis: its `repetition` blob
//! records the `Distinct`/`Equal` witness-closure overhead over `Free` and the naive
//! per-ball oracle's cost over the integrated path, on the one workload shape where
//! the closure has real work. Each update row carries an
//! `overlay_apply` blob comparing the versioned substrate's `OverlayGraph::apply_delta`
//! (O(patches), amortised over any compactions) against the flat `Graph::apply_delta`
//! full-rebuild baseline. Two batched rows (`update-*-batched`, 5 % churn in
//! three-delta batches through `apply_batch`) measure the overlay's net-delta folding:
//! one maintenance pass per batch instead of one per delta. Each overlap row also
//! carries a `fault_overhead` blob pricing the distributed supervision loop when idle:
//! the recovery-enabled runtime with nothing scripted against the fast fan-out, which
//! CI's bench-smoke gates at ≤ 5 % overhead.
//!
//! For each configuration the JSON records mean seconds per run, processed balls per
//! second and data nodes per second, plus the speedup of the fast engine over the seed
//! engine. Run with `cargo bench --bench match_engine`.

use ssim_bench::{workload, BenchWorkload, BENCH_NODES, BENCH_PATTERN_NODES};
use ssim_core::ball::{BallStrategy, BallSubstrate};
use ssim_core::incremental::{IncrementalMatcher, UpdatePlan};
use ssim_core::repetition::{RepetitionMode, RepetitionSemantics};
use ssim_core::simulation::RefineSeed;
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_distributed::{distributed_strong_simulation, DistributedConfig, RecoveryPolicy};
use ssim_experiments::workloads::DatasetKind;
use ssim_graph::GraphDelta;
use std::time::Instant;

/// One measured configuration.
struct ConfigResult {
    name: &'static str,
    seconds: f64,
    balls_per_sec: f64,
    nodes_per_sec: f64,
    subgraphs: usize,
    matched_nodes: usize,
    balls_built: usize,
    balls_reused: usize,
    balls_warm_started: usize,
    seeded_pairs: usize,
    gm_nodes: usize,
}

/// Times each configuration over `runs` interleaved rounds (after one warm-up each) and
/// returns the per-config **median** seconds plus outputs. Round-robin interleaving plus
/// medians keeps slow machine-level drift (frequency scaling, noisy neighbours) from
/// biasing the cross-config ratios the way back-to-back means did.
fn time_configs(
    pattern: &ssim_graph::Pattern,
    data: &ssim_graph::Graph,
    configs: &[&MatchConfig],
    runs: usize,
) -> Vec<(f64, MatchOutput)> {
    let warmups: Vec<MatchOutput> = configs
        .iter()
        .map(|c| strong_simulation(pattern, data, c))
        .collect();
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); configs.len()];
    for _ in 0..runs {
        for (i, config) in configs.iter().enumerate() {
            let start = Instant::now();
            let out = strong_simulation(pattern, data, config);
            times[i].push(start.elapsed().as_secs_f64());
            assert_eq!(
                out.subgraphs.len(),
                warmups[i].subgraphs.len(),
                "nondeterministic output"
            );
        }
    }
    times
        .into_iter()
        .zip(warmups)
        .map(|(mut t, out)| {
            t.sort_by(f64::total_cmp);
            (t[t.len() / 2], out)
        })
        .collect()
}

fn measure(name: &'static str, w: &BenchWorkload, seconds: f64, out: &MatchOutput) -> ConfigResult {
    ConfigResult {
        name,
        seconds,
        balls_per_sec: out.stats.balls_processed as f64 / seconds,
        nodes_per_sec: w.data.node_count() as f64 / seconds,
        subgraphs: out.subgraphs.len(),
        matched_nodes: out.matched_node_count(),
        balls_built: out.stats.balls_built,
        balls_reused: out.stats.balls_reused,
        balls_warm_started: out.stats.balls_warm_started,
        seeded_pairs: out.stats.seeded_pairs,
        gm_nodes: out.stats.gm_nodes,
    }
}

/// Fraction of the data graph surviving the `Gm` extraction (0 when none ran).
fn gm_fraction(gm_nodes: usize, data_nodes: usize) -> f64 {
    if data_nodes == 0 {
        0.0
    } else {
        gm_nodes as f64 / data_nodes as f64
    }
}

/// Fraction of processed balls that warm-started (0 for scratch configurations).
fn warm_fraction(warm_started: usize, built: usize, reused: usize) -> f64 {
    let total = built + reused;
    if total == 0 {
        0.0
    } else {
        warm_started as f64 / total as f64
    }
}

/// Ratio of seeded-worklist sizes: warm delta suspects over scratch full starts.
fn seeded_ratio(warm_seeded: usize, scratch_seeded: usize) -> f64 {
    if scratch_seeded == 0 {
        // Nothing was ever seeded (no candidates anywhere): the layers are equal.
        1.0
    } else {
        warm_seeded as f64 / scratch_seeded as f64
    }
}

/// Fraction of processed balls the forest reused (0 for fresh strategies).
fn reused_fraction(built: usize, reused: usize) -> f64 {
    let total = built + reused;
    if total == 0 {
        0.0
    } else {
        reused as f64 / total as f64
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A deterministic churn stream: `updates` deltas that alternately delete and re-insert
/// the same `churn_edges` randomly chosen edges, so the graph (and the matches near the
/// churned region) oscillates between two versions instead of drifting away from the
/// workload's intended shape.
fn delta_stream(
    data: &ssim_graph::Graph,
    churn_edges: usize,
    updates: usize,
    seed: u64,
) -> Vec<GraphDelta> {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let edges: Vec<(ssim_graph::NodeId, ssim_graph::NodeId)> = data.edges().collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let target = churn_edges.min(edges.len());
    // Partial Fisher–Yates: a uniform `target`-subset of the edge indices in O(|E|).
    let mut indices: Vec<usize> = (0..edges.len()).collect();
    for k in 0..target {
        let j = rng.gen_range(k..indices.len());
        indices.swap(k, j);
    }
    let mut deletion = GraphDelta::new();
    for &i in &indices[..target] {
        let (s, t) = edges[i];
        deletion.delete_edge(s, t);
    }
    let reinsertion = deletion.inverse();
    (0..updates)
        .map(|k| {
            if k % 2 == 0 {
                deletion.clone()
            } else {
                reinsertion.clone()
            }
        })
        .collect()
}

/// Times one update plan absorbing the whole stream. Session construction (the initial
/// full match) is untimed — both plans pay it identically; the applies are the measure.
/// Returns the stream seconds and the mean dirty-ball fraction across the updates.
fn time_update_stream(
    pattern: &ssim_graph::Pattern,
    data: &ssim_graph::Graph,
    config: &MatchConfig,
    plan: UpdatePlan,
    stream: &[GraphDelta],
) -> (f64, f64) {
    let mut session = IncrementalMatcher::new(pattern, data.clone(), config.with_update_plan(plan));
    let mut dirty = 0usize;
    let start = Instant::now();
    for delta in stream {
        session
            .apply(delta)
            .expect("stream validates against the session graph");
        dirty += session.last_update().dirty_balls;
    }
    let secs = start.elapsed().as_secs_f64();
    let fraction = dirty as f64 / (stream.len() * data.node_count()).max(1) as f64;
    (secs, fraction)
}

/// Times one update plan absorbing the stream in `batch`-sized groups via
/// [`IncrementalMatcher::apply_batch`]: the incremental plan validates the batch on a
/// cheap overlay clone, folds it into one net delta and pays a single maintenance pass;
/// the recompute oracle chains the deltas and re-runs the full matcher once per batch.
fn time_update_stream_batched(
    pattern: &ssim_graph::Pattern,
    data: &ssim_graph::Graph,
    config: &MatchConfig,
    plan: UpdatePlan,
    stream: &[GraphDelta],
    batch: usize,
) -> f64 {
    let mut session = IncrementalMatcher::new(pattern, data.clone(), config.with_update_plan(plan));
    let start = Instant::now();
    for chunk in stream.chunks(batch) {
        session
            .apply_batch(chunk)
            .expect("stream validates against the session graph");
    }
    start.elapsed().as_secs_f64()
}

/// Substrate-level delta cost: per-delta microseconds for `OverlayGraph::apply_delta`
/// (patch staging, amortised over any compactions the policy triggers) against the flat
/// `Graph::apply_delta` full-rebuild baseline absorbing the same stream.
struct OverlayApplyStats {
    apply_us_per_delta: f64,
    rebuild_us_per_delta: f64,
    ratio: f64,
    compactions: u64,
    overlay_fraction: f64,
}

fn overlay_apply_stats(
    data: &ssim_graph::Graph,
    stream: &[GraphDelta],
    rounds: usize,
) -> OverlayApplyStats {
    use ssim_graph::OverlayGraph;
    let mut overlay = OverlayGraph::new(data.clone());
    let start = Instant::now();
    for _ in 0..rounds {
        for delta in stream {
            overlay.apply_delta(delta).expect("stream validates");
        }
    }
    let overlay_secs = start.elapsed().as_secs_f64();
    let mut flat = data.clone();
    let start = Instant::now();
    for _ in 0..rounds {
        for delta in stream {
            flat = flat.apply_delta(delta).expect("stream validates");
        }
    }
    let rebuild_secs = start.elapsed().as_secs_f64();
    // The alternating stream nets out to the original graph: both substrates must agree.
    assert!(
        flat == overlay.to_graph(),
        "substrates diverged on the stream"
    );
    let applies = (rounds * stream.len()).max(1) as f64;
    let apply_us = overlay_secs * 1e6 / applies;
    let rebuild_us = rebuild_secs * 1e6 / applies;
    OverlayApplyStats {
        apply_us_per_delta: apply_us,
        rebuild_us_per_delta: rebuild_us,
        ratio: rebuild_us / apply_us.max(f64::MIN_POSITIVE),
        compactions: overlay.compactions(),
        overlay_fraction: overlay.overlay_fraction(),
    }
}

/// A long thick chain (each node linked to the next two) with a diameter-2 path pattern:
/// every radius-2 ball shares all but a couple of nodes with its neighbour's, so the
/// forest slides along the whole chain repairing a handful of distances per center.
fn overlap_chain() -> (&'static str, ssim_graph::Graph, ssim_graph::Pattern) {
    use ssim_graph::{Graph, Label, Pattern};
    let n = 3000u32;
    // One matchable 0/1 prefix; the long tail is ball-construction-bound: its labels
    // never seed a candidate, so per-ball cost there is the ball build itself.
    let labels: Vec<Label> = (0..n)
        .map(|i| Label(if i < 64 { i % 2 } else { 2 }))
        .collect();
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.extend((0..n - 2).map(|i| (i, i + 2)));
    let data = Graph::from_edges(labels, &edges).unwrap();
    let pattern =
        Pattern::from_edges(vec![Label(0), Label(1), Label(0)], &[(0, 1), (1, 2)]).unwrap();
    ("overlap-chain", data, pattern)
}

/// Ring communities chained in a ring: centers inside one community see nearly identical
/// balls, so the forest slides along each community repairing a handful of distances per
/// center, and the warm layer carries the community's relation with it.
///
/// PR 3 re-parameterised this row so it exercises the *reuse* layers it reports on: the
/// PR 2 variant's dense chords made every slide degenerate, so the adaptive back-off
/// (correctly) turned the whole row into fresh rebuilds and both `ball_reuse` and
/// `refine_warm` measured little beyond ball construction. The communities now use short
/// chords (sliding-friendly, like real near-1D community chains), the first communities
/// keep the matchable labelling, and the filler communities carry isolated *near-miss*
/// candidates — pattern-labelled nodes that are never wired into a match, the classic
/// selective-query case where scratch seeding pays label-index scans plus dead-candidate
/// cascades in every ball while the warm carry pays only for the membership delta. The
/// dense back-off behaviour itself stays pinned by the `ball`/warm back-off tests.
fn overlap_cluster() -> (&'static str, ssim_graph::Graph, ssim_graph::Pattern) {
    use ssim_graph::{Graph, Label, Pattern};
    let communities = 40u32;
    let size = 24u32;
    let n = communities * size;
    let labels: Vec<Label> = (0..n)
        .map(|i| {
            if i < 4 * size {
                // Matchable prefix: consecutive ring labels realise the path pattern.
                Label(i % 3)
            } else {
                // Near-miss candidates at ring positions 0/8/16: with chords {1, 2} they
                // are never adjacent to each other, so their candidacy always refines
                // away — per ball, from scratch; once per delta, warm.
                match i % size {
                    0 => Label(0),
                    8 => Label(1),
                    16 => Label(2),
                    _ => Label(3),
                }
            }
        })
        .collect();
    let mut edges = Vec::new();
    for c in 0..communities {
        let base = c * size;
        for i in 0..size - 1 {
            // Path plus one short chord per node: adjacent centers' balls overlap
            // almost entirely and the locality walk stays single-fronted, so slides
            // remain productive (rings would make the BFS alternate between two fronts
            // and every slide degenerate into the back-off).
            edges.push((base + i, base + i + 1));
            if i < size - 2 {
                edges.push((base + i, base + i + 2));
            }
        }
        // One bridge to the next community (linear chain of communities).
        if c + 1 < communities {
            edges.push((base + size - 1, base + size));
        }
    }
    let data = Graph::from_edges(labels, &edges).unwrap();
    let pattern =
        Pattern::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
    ("overlap-cluster", data, pattern)
}

/// Equal-label community corpus for the repetition-semantics row: star-shaped
/// communities whose hub and members all carry label 0 (bidirectional spokes), chained
/// by label-1 bridges. Every radius-2 ball is dense in repeated-label candidates —
/// exactly the shape where the `Distinct`/`Equal` witness closure has real work — while
/// the per-ball candidate products stay far under the witness budget, so no ball bails.
fn repeated_labels() -> (&'static str, ssim_graph::Graph, ssim_graph::Pattern) {
    use ssim_graph::{Graph, Label, Pattern};
    let communities = 48u32;
    let members = 12u32;
    let mut labels = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for c in 0..communities {
        let hub = labels.len() as u32;
        labels.push(Label(0));
        for _ in 0..members {
            let m = labels.len() as u32;
            labels.push(Label(0));
            edges.push((hub, m));
            edges.push((m, hub));
        }
        if c + 1 < communities {
            let bridge = labels.len() as u32;
            labels.push(Label(1));
            edges.push((hub, bridge));
            edges.push((bridge, hub + members + 2));
        }
    }
    // Fold-loop components: a self-looped label-0 node feeding a label-1 sink. Dual
    // simulation keeps the loop node for both label-0 pattern nodes, but the only
    // witness maps them to the *same* node — so `Distinct` filters the pair away while
    // `Equal` (which wants exactly that collapse) keeps it. These give the closure
    // genuine removals and the `Free`/`Distinct`/`Equal` outputs three distinct values.
    for _ in 0..8 {
        let a = labels.len() as u32;
        labels.push(Label(0));
        let c = labels.len() as u32;
        labels.push(Label(1));
        edges.push((a, a));
        edges.push((a, c));
    }
    let data = Graph::from_edges(labels, &edges).unwrap();
    // Both endpoints of the 2-path sit on the repeated label: the closure must find a
    // witness with two *distinct* (resp. one shared) label-0 nodes in every ball.
    let pattern =
        Pattern::from_edges(vec![Label(0), Label(0), Label(1)], &[(0, 1), (1, 2)]).unwrap();
    ("repeated-labels", data, pattern)
}

fn main() {
    // `cargo test` may execute bench targets in test mode; only benchmark under
    // `cargo bench`.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let runs = 9usize;
    let threads = ssim_core::parallel::available_threads();
    let configs: [(&'static str, MatchConfig); 8] = [
        ("seed/match", MatchConfig::seed_reference()),
        (
            "seed/match_plus",
            MatchConfig {
                minimize_query: true,
                dual_filter: true,
                connectivity_pruning: true,
                ..MatchConfig::seed_reference()
            },
        ),
        ("engine/match", MatchConfig::basic()),
        ("engine/match_plus", MatchConfig::optimized()),
        (
            "engine/match_freshballs",
            MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs),
        ),
        (
            "engine/match_scratch",
            MatchConfig::basic().with_refine_seed(RefineSeed::FromScratch),
        ),
        (
            "engine/match_plus_fullballs",
            MatchConfig::optimized().with_ball_substrate(BallSubstrate::FullGraph),
        ),
        (
            "engine/match_plus_distinct",
            MatchConfig::optimized().with_repetition(RepetitionSemantics::Distinct),
        ),
    ];

    let mut dataset_blobs = Vec::new();
    for dataset in DatasetKind::all() {
        let w = workload(dataset);
        eprintln!(
            "dataset {} : |V|={} |E|={} pattern |Vq|={} dQ={}",
            dataset.name(),
            w.data.node_count(),
            w.data.edge_count(),
            w.pattern.node_count(),
            w.pattern.diameter()
        );
        let config_refs: Vec<&MatchConfig> = configs.iter().map(|(_, c)| c).collect();
        let timed = time_configs(&w.pattern, &w.data, &config_refs, runs);
        let results: Vec<ConfigResult> = configs
            .iter()
            .zip(&timed)
            .map(|((name, _), (seconds, out))| measure(name, &w, *seconds, out))
            .collect();
        // Headline: the optimised matcher on the new engine vs the seed's naive
        // sequential engine (its shipped `Match`). Same-configuration ratios are also
        // recorded so engine regressions stay visible.
        let headline = results[0].seconds / results[3].seconds;
        let speedup_plus = results[1].seconds / results[3].seconds;
        let speedup_basic = results[0].seconds / results[2].seconds;
        // Ball-reuse layer in isolation: the fast engine with fresh balls vs the same
        // engine with the sliding forest (same config otherwise).
        let ball_reuse_speedup = results[4].seconds / results[2].seconds;
        let ball_reused_fraction = reused_fraction(results[2].balls_built, results[2].balls_reused);
        // Warm-start layer in isolation: the fast engine seeded from scratch vs the same
        // engine carrying the relation across slides (same config otherwise).
        let refine_warm_speedup = results[5].seconds / results[2].seconds;
        let refine_warm_fraction = warm_fraction(
            results[2].balls_warm_started,
            results[2].balls_built,
            results[2].balls_reused,
        );
        let refine_warm_seeded = seeded_ratio(results[2].seeded_pairs, results[5].seeded_pairs);
        // Ball-substrate layer in isolation: Match+ with full-graph balls vs the same
        // configuration building its balls inside the extracted Gm.
        let gm_speedup = results[6].seconds / results[3].seconds;
        let gm_frac = gm_fraction(results[3].gm_nodes, w.data.node_count());
        // Repetition axis on standard rows: the workload patterns are label-distinct,
        // so the `Distinct` closure is a gated no-op and this ratio prices the gate
        // itself (the per-ball repeated-label check) — the ≤1.5x standard-row claim.
        let repetition_overhead = results[7].seconds / results[3].seconds;
        for r in &results {
            eprintln!(
                "  {:<22} {:>10.4} ms/run  {:>12.0} balls/s  {:>12.0} nodes/s  ({} subgraphs)",
                r.name,
                r.seconds * 1e3,
                r.balls_per_sec,
                r.nodes_per_sec,
                r.subgraphs
            );
        }
        eprintln!(
            "  speedup: Match+ vs seed engine {headline:.2}x (same-config: Match {speedup_basic:.2}x, Match+ {speedup_plus:.2}x)"
        );
        eprintln!(
            "  ball reuse: {:.0}% of balls reused, {ball_reuse_speedup:.2}x vs fresh balls",
            ball_reused_fraction * 100.0
        );
        eprintln!(
            "  refine warm: {:.0}% of balls warm-started, {refine_warm_speedup:.2}x vs scratch seeding, seeded ratio {refine_warm_seeded:.3}",
            refine_warm_fraction * 100.0
        );
        eprintln!(
            "  gm substrate: Gm holds {:.0}% of |V|, {gm_speedup:.2}x vs full-graph balls",
            gm_frac * 100.0
        );
        eprintln!("  repetition: Distinct overhead {repetition_overhead:.2}x vs Match+ (gated)");
        let config_json: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "      {{\"name\": \"{}\", \"seconds_per_run\": {:.6}, ",
                        "\"balls_per_sec\": {:.1}, \"nodes_per_sec\": {:.1}, ",
                        "\"subgraphs\": {}, \"matched_nodes\": {}, ",
                        "\"balls_built\": {}, \"balls_reused\": {}, ",
                        "\"balls_warm_started\": {}, \"seeded_pairs\": {}}}"
                    ),
                    json_escape(r.name),
                    r.seconds,
                    r.balls_per_sec,
                    r.nodes_per_sec,
                    r.subgraphs,
                    r.matched_nodes,
                    r.balls_built,
                    r.balls_reused,
                    r.balls_warm_started,
                    r.seeded_pairs
                )
            })
            .collect();
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": {}, \"pattern_diameter\": {},\n",
                "     \"speedup_match_plus_vs_seed_engine\": {:.3},\n",
                "     \"speedup_match_same_config\": {:.3}, ",
                "\"speedup_match_plus_same_config\": {:.3},\n",
                "     \"ball_reuse\": {{\"reused_fraction\": {:.4}, ",
                "\"speedup_vs_fresh\": {:.3}}},\n",
                "     \"refine_warm\": {{\"warm_fraction\": {:.4}, ",
                "\"speedup_vs_scratch\": {:.3}, \"seeded_ratio\": {:.4}}},\n",
                "     \"gm_substrate\": {{\"gm_fraction\": {:.4}, ",
                "\"speedup_vs_full\": {:.3}}},\n",
                "     \"repetition\": {{\"distinct_overhead_vs_free\": {:.3}}},\n",
                "     \"configs\": [\n{}\n    ]}}"
            ),
            json_escape(dataset.name()),
            w.data.node_count(),
            w.data.edge_count(),
            w.pattern.node_count(),
            w.pattern.diameter(),
            headline,
            speedup_basic,
            speedup_plus,
            ball_reused_fraction,
            ball_reuse_speedup,
            refine_warm_fraction,
            refine_warm_speedup,
            refine_warm_seeded,
            gm_frac,
            gm_speedup,
            repetition_overhead,
            config_json.join(",\n")
        ));
    }

    // Cascade stress: a self-loop pattern over a long path forces the refinement to strip
    // the candidate set one layer per pass, the worst case the worklist engine exists for.
    // `Match+` computes the (empty) global dual-simulation relation and skips every ball,
    // so this row isolates the refinement algorithms.
    {
        let n = 4000u32;
        let pattern =
            ssim_graph::Pattern::from_edges(vec![ssim_graph::Label(0)], &[(0, 0)]).unwrap();
        let chain = ssim_graph::Graph::from_edges(
            vec![ssim_graph::Label(0); n as usize],
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
        .unwrap();
        let seed_cfg = MatchConfig {
            minimize_query: true,
            dual_filter: true,
            connectivity_pruning: true,
            ..MatchConfig::seed_reference()
        };
        let engine_cfg = MatchConfig::optimized();
        let mut timed = time_configs(&pattern, &chain, &[&seed_cfg, &engine_cfg], runs);
        let (engine_secs, engine_out) = timed.pop().expect("engine timing");
        let (seed_secs, seed_out) = timed.pop().expect("seed timing");
        assert_eq!(seed_out.subgraphs.len(), engine_out.subgraphs.len());
        // Unlike the dataset rows' cross-config headline, this is a *same-config*
        // comparison (Match+ on both engines), isolating the refinement algorithm.
        let cascade_speedup = seed_secs / engine_secs;
        eprintln!(
            "cascade chain n={n}: seed {:.3} ms, engine {:.3} ms — {cascade_speedup:.1}x (same-config Match+)",
            seed_secs * 1e3,
            engine_secs * 1e3
        );
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"cascade-chain\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": 1, \"pattern_diameter\": 0,\n",
                "     \"speedup_match_plus_same_config\": {:.3},\n",
                "     \"configs\": [\n",
                "      {{\"name\": \"seed/match_plus\", \"seconds_per_run\": {:.6}}},\n",
                "      {{\"name\": \"engine/match_plus\", \"seconds_per_run\": {:.6}}}\n",
                "    ]}}"
            ),
            n,
            n - 1,
            cascade_speedup,
            seed_secs,
            engine_secs
        ));
    }

    // High-overlap workloads: adjacent centers share most of their balls, the case the
    // sliding BallForest and the warm-start layer exist for. Each row compares the fast
    // engine's plain `Match` (warm by default) with fresh balls (isolating ball reuse)
    // and with scratch seeding on sliding balls (isolating relation warm-starting).
    for (name, data, pattern) in [overlap_chain(), overlap_cluster()] {
        let incr_cfg = MatchConfig::basic();
        let fresh_cfg = MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs);
        let scratch_cfg = MatchConfig::basic().with_refine_seed(RefineSeed::FromScratch);
        let mut timed = time_configs(
            &pattern,
            &data,
            &[&incr_cfg, &fresh_cfg, &scratch_cfg],
            runs,
        );
        let (scratch_secs, scratch_out) = timed.pop().expect("scratch timing");
        let (fresh_secs, fresh_out) = timed.pop().expect("fresh timing");
        let (incr_secs, incr_out) = timed.pop().expect("incremental timing");
        assert_eq!(incr_out.subgraphs.len(), fresh_out.subgraphs.len());
        assert_eq!(incr_out.subgraphs.len(), scratch_out.subgraphs.len());
        let speedup = fresh_secs / incr_secs;
        let fraction = reused_fraction(incr_out.stats.balls_built, incr_out.stats.balls_reused);
        let warm_speedup = scratch_secs / incr_secs;
        let warm_frac = warm_fraction(
            incr_out.stats.balls_warm_started,
            incr_out.stats.balls_built,
            incr_out.stats.balls_reused,
        );
        let warm_seeded = seeded_ratio(incr_out.stats.seeded_pairs, scratch_out.stats.seeded_pairs);
        // Balls/sec scaling curve: the same plain config at explicit worker counts
        // 1/2/4/8 through the work-stealing chunk scheduler. `measured_cores` records
        // the physical parallelism behind the numbers (ignoring the SSIM_THREADS
        // override): on a single-core box the curve is flat-to-falling and only the
        // 1-thread point is meaningful; re-run on a multi-core box to commit real
        // speedups.
        let measured_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let scaling_threads = [1usize, 2, 4, 8];
        let thread_cfgs: Vec<MatchConfig> = scaling_threads
            .iter()
            .map(|&t| MatchConfig::basic().with_thread_limit(t))
            .collect();
        let cfg_refs: Vec<&MatchConfig> = thread_cfgs.iter().collect();
        let scaled = time_configs(&pattern, &data, &cfg_refs, runs);
        for (_, out) in &scaled {
            assert_eq!(
                out.subgraphs.len(),
                incr_out.subgraphs.len(),
                "thread count changed the output"
            );
        }
        let scaling_points: Vec<String> = scaled
            .iter()
            .zip(scaling_threads)
            .map(|((secs, out), t)| {
                format!(
                    concat!(
                        "{{\"threads\": {}, \"seconds_per_run\": {:.6}, ",
                        "\"balls_per_sec\": {:.1}, \"chunks\": {}, ",
                        "\"chunks_stolen\": {}, \"chunks_split\": {}}}"
                    ),
                    t,
                    secs,
                    out.stats.balls_processed as f64 / secs,
                    out.stats.chunks_processed,
                    out.stats.chunks_stolen,
                    out.stats.chunks_split
                )
            })
            .collect();
        let speedup_2t = scaled[0].0 / scaled[1].0;
        let speedup_4t = scaled[0].0 / scaled[2].0;
        let speedup_8t = scaled[0].0 / scaled[3].0;
        eprintln!(
            "{name} scaling (cores={measured_cores}): 1t {:.3} ms, 2t {:.3} ms ({speedup_2t:.2}x), 4t {:.3} ms ({speedup_4t:.2}x), 8t {:.3} ms ({speedup_8t:.2}x)",
            scaled[0].0 * 1e3,
            scaled[1].0 * 1e3,
            scaled[2].0 * 1e3,
            scaled[3].0 * 1e3
        );
        eprintln!(
            "{name} |V|={}: fresh {:.3} ms, scratch {:.3} ms, warm {:.3} ms — ball reuse {speedup:.2}x ({:.0}% reused), refine warm {warm_speedup:.2}x ({:.0}% warm, seeded ratio {warm_seeded:.3})",
            data.node_count(),
            fresh_secs * 1e3,
            scratch_secs * 1e3,
            incr_secs * 1e3,
            fraction * 100.0,
            warm_frac * 100.0
        );
        // Fault-tolerance pricing: the supervised distributed runtime (recovery
        // configured, nothing scripted) against the fast fan-out (recovery disabled)
        // on the same row. Supervision must be close to free when no faults fire;
        // bench-smoke gates `overhead` at 1.05.
        let fast_dist = DistributedConfig {
            sites: 4,
            minimize_query: false,
            ..DistributedConfig::default()
        };
        let supervised_dist = DistributedConfig {
            recovery: Some(RecoveryPolicy::default()),
            ..fast_dist
        };
        let warm_fast = distributed_strong_simulation(&pattern, &data, &fast_dist)
            .expect("valid distributed config");
        let warm_supervised = distributed_strong_simulation(&pattern, &data, &supervised_dist)
            .expect("valid distributed config");
        assert_eq!(
            warm_fast.subgraphs, warm_supervised.subgraphs,
            "idle supervision changed the distributed output"
        );
        let mut fast_dist_times = Vec::with_capacity(runs);
        let mut supervised_dist_times = Vec::with_capacity(runs);
        for _ in 0..runs {
            let t = Instant::now();
            let out = distributed_strong_simulation(&pattern, &data, &fast_dist)
                .expect("valid distributed config");
            fast_dist_times.push(t.elapsed().as_secs_f64());
            assert_eq!(out.subgraphs.len(), warm_fast.subgraphs.len());
            let t = Instant::now();
            let out = distributed_strong_simulation(&pattern, &data, &supervised_dist)
                .expect("valid distributed config");
            supervised_dist_times.push(t.elapsed().as_secs_f64());
            assert_eq!(out.subgraphs.len(), warm_fast.subgraphs.len());
        }
        fast_dist_times.sort_by(f64::total_cmp);
        supervised_dist_times.sort_by(f64::total_cmp);
        let fast_dist_secs = fast_dist_times[fast_dist_times.len() / 2];
        let supervised_dist_secs = supervised_dist_times[supervised_dist_times.len() / 2];
        let fault_overhead = supervised_dist_secs / fast_dist_secs;
        eprintln!(
            "{name} fault tolerance: fast fan-out {:.3} ms, idle supervision {:.3} ms ({fault_overhead:.3}x)",
            fast_dist_secs * 1e3,
            supervised_dist_secs * 1e3
        );
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": {}, \"pattern_diameter\": {},\n",
                "     \"ball_reuse\": {{\"reused_fraction\": {:.4}, ",
                "\"speedup_vs_fresh\": {:.3}}},\n",
                "     \"refine_warm\": {{\"warm_fraction\": {:.4}, ",
                "\"speedup_vs_scratch\": {:.3}, \"seeded_ratio\": {:.4}}},\n",
                "     \"fault_overhead\": {{\"fast_secs\": {:.6}, ",
                "\"supervised_secs\": {:.6}, \"overhead\": {:.4}}},\n",
                "     \"scaling\": {{\"measured_cores\": {}, \"speedup_2t\": {:.3}, ",
                "\"speedup_4t\": {:.3}, \"speedup_8t\": {:.3},\n",
                "      \"points\": [{}]}},\n",
                "     \"configs\": [\n",
                "      {{\"name\": \"engine/match\", \"seconds_per_run\": {:.6}, ",
                "\"balls_built\": {}, \"balls_reused\": {}, ",
                "\"balls_warm_started\": {}, \"seeded_pairs\": {}}},\n",
                "      {{\"name\": \"engine/match_freshballs\", \"seconds_per_run\": {:.6}, ",
                "\"balls_built\": {}, \"balls_reused\": {}}},\n",
                "      {{\"name\": \"engine/match_scratch\", \"seconds_per_run\": {:.6}, ",
                "\"balls_built\": {}, \"balls_reused\": {}, \"seeded_pairs\": {}}}\n",
                "    ]}}"
            ),
            json_escape(name),
            data.node_count(),
            data.edge_count(),
            pattern.node_count(),
            pattern.diameter(),
            fraction,
            speedup,
            warm_frac,
            warm_speedup,
            warm_seeded,
            fast_dist_secs,
            supervised_dist_secs,
            fault_overhead,
            measured_cores,
            speedup_2t,
            speedup_4t,
            speedup_8t,
            scaling_points.join(", "),
            incr_secs,
            incr_out.stats.balls_built,
            incr_out.stats.balls_reused,
            incr_out.stats.balls_warm_started,
            incr_out.stats.seeded_pairs,
            fresh_secs,
            fresh_out.stats.balls_built,
            fresh_out.stats.balls_reused,
            scratch_secs,
            scratch_out.stats.balls_built,
            scratch_out.stats.balls_reused,
            scratch_out.stats.seeded_pairs
        ));
    }

    // Selective workload: a sparse matchable chain (every `stride`-th node, linked to
    // the next matchable node) woven through a thick unmatchable mesh. The global dual
    // filter keeps only the chain, so `Gm` holds under 10 % of |V| — and the Gm-substrate
    // balls are chain-sized while full-graph balls pay the mesh degree. Ball membership
    // is identical on both substrates here (consecutive matchable nodes are directly
    // linked, so Gm distances equal data-graph distances) and the bench asserts the
    // outputs agree bit for bit.
    {
        let (data, pattern) = ssim_datasets::synthetic::selective_labels(6000, 12, 4);
        let gm_cfg = MatchConfig::optimized();
        let full_cfg = MatchConfig::optimized().with_ball_substrate(BallSubstrate::FullGraph);
        let mut timed = time_configs(&pattern, &data, &[&gm_cfg, &full_cfg], runs);
        let (full_secs, full_out) = timed.pop().expect("full-substrate timing");
        let (gm_secs, gm_out) = timed.pop().expect("gm-substrate timing");
        assert_eq!(gm_out.subgraphs.len(), full_out.subgraphs.len());
        for (a, b) in gm_out.subgraphs.iter().zip(&full_out.subgraphs) {
            assert_eq!(
                a.center, b.center,
                "substrates diverged on selective-labels"
            );
            assert_eq!(a.nodes, b.nodes, "substrates diverged on selective-labels");
        }
        let speedup = full_secs / gm_secs;
        let fraction = gm_fraction(gm_out.stats.gm_nodes, data.node_count());
        eprintln!(
            "selective-labels |V|={}: full {:.3} ms, gm {:.3} ms — gm substrate {speedup:.2}x (Gm holds {:.1}% of |V|, {} subgraphs)",
            data.node_count(),
            full_secs * 1e3,
            gm_secs * 1e3,
            fraction * 100.0,
            gm_out.subgraphs.len()
        );
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"selective-labels\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": {}, \"pattern_diameter\": {},\n",
                "     \"gm_substrate\": {{\"gm_fraction\": {:.4}, ",
                "\"speedup_vs_full\": {:.3}}},\n",
                "     \"configs\": [\n",
                "      {{\"name\": \"engine/match_plus\", \"seconds_per_run\": {:.6}, ",
                "\"gm_nodes\": {}, \"gm_edges\": {}, ",
                "\"balls_built\": {}, \"balls_reused\": {}, \"subgraphs\": {}}},\n",
                "      {{\"name\": \"engine/match_plus_fullballs\", \"seconds_per_run\": {:.6}, ",
                "\"balls_built\": {}, \"balls_reused\": {}, \"subgraphs\": {}}}\n",
                "    ]}}"
            ),
            data.node_count(),
            data.edge_count(),
            pattern.node_count(),
            pattern.diameter(),
            fraction,
            speedup,
            gm_secs,
            gm_out.stats.gm_nodes,
            gm_out.stats.gm_edges,
            gm_out.stats.balls_built,
            gm_out.stats.balls_reused,
            gm_out.subgraphs.len(),
            full_secs,
            full_out.stats.balls_built,
            full_out.stats.balls_reused,
            full_out.subgraphs.len()
        ));
    }

    // Repetition semantics: the sixth oracle axis on its worst-case-friendly corpus.
    // `Free` is the axis-less baseline; `Distinct`/`Equal` pay the per-ball witness
    // closure (integrated path), and the naive per-ball oracle bounds the closure's
    // engine integration win. On label-distinct rows the axis is a gated no-op — the
    // overhead ratios here are the price on the one workload shape that actually pays.
    {
        let (name, data, pattern) = repeated_labels();
        let free_cfg = MatchConfig::basic();
        let distinct_cfg = MatchConfig::basic().with_repetition(RepetitionSemantics::Distinct);
        let equal_cfg = MatchConfig::basic().with_repetition(RepetitionSemantics::Equal);
        let naive_cfg = MatchConfig::basic()
            .with_repetition(RepetitionSemantics::Distinct)
            .with_repetition_mode(RepetitionMode::NaiveOracle);
        let mut timed = time_configs(
            &pattern,
            &data,
            &[&free_cfg, &distinct_cfg, &equal_cfg, &naive_cfg],
            runs,
        );
        let (naive_secs, naive_out) = timed.pop().expect("naive timing");
        let (equal_secs, equal_out) = timed.pop().expect("equal timing");
        let (distinct_secs, distinct_out) = timed.pop().expect("distinct timing");
        let (free_secs, free_out) = timed.pop().expect("free timing");
        assert_eq!(
            distinct_out.subgraphs, naive_out.subgraphs,
            "integrated and naive repetition paths diverged"
        );
        assert_eq!(
            distinct_out.stats.repetition_bailed_balls, 0,
            "repeated-labels corpus must stay within the witness budget"
        );
        assert!(
            distinct_out.stats.repetition_filtered_pairs > 0
                || distinct_out.subgraphs == free_out.subgraphs,
            "closure ran but neither filtered nor matched"
        );
        let distinct_overhead = distinct_secs / free_secs;
        let equal_overhead = equal_secs / free_secs;
        let naive_vs_integrated = naive_secs / distinct_secs;
        eprintln!(
            "{name} |V|={}: free {:.3} ms, distinct {:.3} ms ({distinct_overhead:.2}x), equal {:.3} ms ({equal_overhead:.2}x), naive oracle {naive_vs_integrated:.2}x vs integrated ({} filtered pairs, {} subgraphs)",
            data.node_count(),
            free_secs * 1e3,
            distinct_secs * 1e3,
            equal_secs * 1e3,
            distinct_out.stats.repetition_filtered_pairs,
            distinct_out.subgraphs.len()
        );
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": {}, \"pattern_diameter\": {},\n",
                "     \"repetition\": {{\"distinct_overhead_vs_free\": {:.3}, ",
                "\"equal_overhead_vs_free\": {:.3}, ",
                "\"naive_vs_integrated\": {:.3},\n",
                "      \"filtered_pairs_distinct\": {}, \"filtered_pairs_equal\": {}, ",
                "\"bailed_balls\": {}}},\n",
                "     \"configs\": [\n",
                "      {{\"name\": \"engine/match_free\", \"seconds_per_run\": {:.6}, ",
                "\"subgraphs\": {}}},\n",
                "      {{\"name\": \"engine/match_distinct\", \"seconds_per_run\": {:.6}, ",
                "\"subgraphs\": {}}},\n",
                "      {{\"name\": \"engine/match_equal\", \"seconds_per_run\": {:.6}, ",
                "\"subgraphs\": {}}},\n",
                "      {{\"name\": \"engine/match_distinct_naive\", \"seconds_per_run\": {:.6}, ",
                "\"subgraphs\": {}}}\n",
                "    ]}}"
            ),
            json_escape(name),
            data.node_count(),
            data.edge_count(),
            pattern.node_count(),
            pattern.diameter(),
            distinct_overhead,
            equal_overhead,
            naive_vs_integrated,
            distinct_out.stats.repetition_filtered_pairs,
            equal_out.stats.repetition_filtered_pairs,
            distinct_out.stats.repetition_bailed_balls,
            free_secs,
            free_out.subgraphs.len(),
            distinct_secs,
            distinct_out.subgraphs.len(),
            equal_secs,
            equal_out.subgraphs.len(),
            naive_secs,
            naive_out.subgraphs.len()
        ));
    }

    // Update streams: a matching session absorbs batches of edge churn (1 % / 5 % of
    // |E|, alternately deleted and re-inserted so the graph oscillates). The
    // `UpdatePlan::Incremental` session maintains the global relation and re-runs only
    // the dirty balls (Prop. 3 locality); the `UpdatePlan::Recompute` oracle re-runs
    // the full matcher per batch. The `incremental_update` blob records the dirty-ball
    // fraction and the speedup — the continuously-serving engine's headline numbers.
    {
        let updates = 6usize;
        let (_, oc_data, oc_pattern) = overlap_chain();
        let (sl_data, sl_pattern) = ssim_datasets::synthetic::selective_labels(6000, 12, 4);
        let update_rows: [(&str, &ssim_graph::Graph, &ssim_graph::Pattern, MatchConfig); 2] = [
            (
                "update-overlap-chain",
                &oc_data,
                &oc_pattern,
                MatchConfig::basic(),
            ),
            (
                "update-selective-labels",
                &sl_data,
                &sl_pattern,
                MatchConfig::optimized(),
            ),
        ];
        for (name, data, pattern, config) in update_rows {
            for (suffix, churn) in [("1pct", 0.01f64), ("5pct", 0.05f64)] {
                let churn_edges = ((data.edge_count() as f64 * churn).ceil() as usize).max(1);
                let stream = delta_stream(data, churn_edges, updates, 0x5eed_0001);
                // Correctness gate + warm-up: both plans step-locked once.
                {
                    let mut inc = IncrementalMatcher::new(
                        pattern,
                        data.clone(),
                        config.with_update_plan(UpdatePlan::Incremental),
                    );
                    let mut rec = IncrementalMatcher::new(
                        pattern,
                        data.clone(),
                        config.with_update_plan(UpdatePlan::Recompute),
                    );
                    for delta in &stream {
                        inc.apply(delta).expect("stream validates");
                        rec.apply(delta).expect("stream validates");
                        assert_eq!(
                            inc.output().subgraphs,
                            rec.output().subgraphs,
                            "update plans diverged"
                        );
                    }
                }
                let stream_runs = 5usize;
                let mut inc_times = Vec::with_capacity(stream_runs);
                let mut rec_times = Vec::with_capacity(stream_runs);
                let mut dirty_fraction = 0.0f64;
                for _ in 0..stream_runs {
                    let (secs, fraction) = time_update_stream(
                        pattern,
                        data,
                        &config,
                        UpdatePlan::Incremental,
                        &stream,
                    );
                    inc_times.push(secs);
                    dirty_fraction = fraction; // deterministic, identical every run
                    let (secs, _) =
                        time_update_stream(pattern, data, &config, UpdatePlan::Recompute, &stream);
                    rec_times.push(secs);
                }
                inc_times.sort_by(f64::total_cmp);
                rec_times.sort_by(f64::total_cmp);
                let inc_secs = inc_times[inc_times.len() / 2];
                let rec_secs = rec_times[rec_times.len() / 2];
                let speedup = rec_secs / inc_secs;
                // Substrate cost alone: overlay patch staging vs flat CSR rebuild.
                let overlay = overlay_apply_stats(data, &stream, 5);
                eprintln!(
                    "{name}-{suffix} |V|={}: churn {churn_edges} edges x {updates} updates — recompute {:.3} ms, incremental {:.3} ms, {speedup:.2}x (dirty fraction {:.3})",
                    data.node_count(),
                    rec_secs * 1e3,
                    inc_secs * 1e3,
                    dirty_fraction
                );
                eprintln!(
                    "  overlay apply: {:.1} us/delta vs {:.1} us rebuild — {:.1}x ({} compactions, overlay fraction {:.4})",
                    overlay.apply_us_per_delta,
                    overlay.rebuild_us_per_delta,
                    overlay.ratio,
                    overlay.compactions,
                    overlay.overlay_fraction
                );
                dataset_blobs.push(format!(
                    concat!(
                        "    {{\"dataset\": \"{}-{}\", \"nodes\": {}, \"edges\": {}, ",
                        "\"pattern_nodes\": {}, \"pattern_diameter\": {},\n",
                        "     \"incremental_update\": {{\"churn\": {:.4}, \"churn_edges\": {}, ",
                        "\"updates\": {}, \"dirty_ball_fraction\": {:.4}, ",
                        "\"speedup_vs_recompute\": {:.3}}},\n",
                        "     \"overlay_apply\": {{\"apply_us_per_delta\": {:.3}, ",
                        "\"rebuild_us_per_delta\": {:.3}, \"ratio\": {:.3}, ",
                        "\"compactions\": {}, \"overlay_fraction\": {:.4}}},\n",
                        "     \"configs\": [\n",
                        "      {{\"name\": \"engine/update_incremental\", \"seconds_per_stream\": {:.6}}},\n",
                        "      {{\"name\": \"engine/update_recompute\", \"seconds_per_stream\": {:.6}}}\n",
                        "    ]}}"
                    ),
                    json_escape(name),
                    suffix,
                    data.node_count(),
                    data.edge_count(),
                    pattern.node_count(),
                    pattern.diameter(),
                    churn,
                    churn_edges,
                    updates,
                    dirty_fraction,
                    speedup,
                    overlay.apply_us_per_delta,
                    overlay.rebuild_us_per_delta,
                    overlay.ratio,
                    overlay.compactions,
                    overlay.overlay_fraction,
                    inc_secs,
                    rec_secs
                ));
                // Batched variant at the heavy churn level: the stream folds into
                // three-delta net batches, so the incremental session pays one
                // maintenance pass per batch instead of one per delta.
                if suffix == "5pct" {
                    let batch = 3usize;
                    // Correctness gate: batched plans step-locked once.
                    {
                        let mut inc = IncrementalMatcher::new(
                            pattern,
                            data.clone(),
                            config.with_update_plan(UpdatePlan::Incremental),
                        );
                        let mut rec = IncrementalMatcher::new(
                            pattern,
                            data.clone(),
                            config.with_update_plan(UpdatePlan::Recompute),
                        );
                        for chunk in stream.chunks(batch) {
                            inc.apply_batch(chunk).expect("stream validates");
                            rec.apply_batch(chunk).expect("stream validates");
                            assert_eq!(
                                inc.output().subgraphs,
                                rec.output().subgraphs,
                                "batched update plans diverged"
                            );
                        }
                    }
                    let mut inc_times = Vec::with_capacity(stream_runs);
                    let mut rec_times = Vec::with_capacity(stream_runs);
                    for _ in 0..stream_runs {
                        inc_times.push(time_update_stream_batched(
                            pattern,
                            data,
                            &config,
                            UpdatePlan::Incremental,
                            &stream,
                            batch,
                        ));
                        rec_times.push(time_update_stream_batched(
                            pattern,
                            data,
                            &config,
                            UpdatePlan::Recompute,
                            &stream,
                            batch,
                        ));
                    }
                    inc_times.sort_by(f64::total_cmp);
                    rec_times.sort_by(f64::total_cmp);
                    let inc_secs = inc_times[inc_times.len() / 2];
                    let rec_secs = rec_times[rec_times.len() / 2];
                    let batched_speedup = rec_secs / inc_secs;
                    eprintln!(
                        "{name}-batched |V|={}: churn {churn_edges} edges x {updates} updates in batches of {batch} — recompute {:.3} ms, incremental {:.3} ms, {batched_speedup:.2}x",
                        data.node_count(),
                        rec_secs * 1e3,
                        inc_secs * 1e3
                    );
                    dataset_blobs.push(format!(
                        concat!(
                            "    {{\"dataset\": \"{}-batched\", \"nodes\": {}, \"edges\": {}, ",
                            "\"pattern_nodes\": {}, \"pattern_diameter\": {},\n",
                            "     \"incremental_update\": {{\"churn\": {:.4}, \"churn_edges\": {}, ",
                            "\"updates\": {}, \"batch\": {}, ",
                            "\"speedup_vs_recompute\": {:.3}}},\n",
                            "     \"configs\": [\n",
                            "      {{\"name\": \"engine/update_incremental_batched\", \"seconds_per_stream\": {:.6}}},\n",
                            "      {{\"name\": \"engine/update_recompute_batched\", \"seconds_per_stream\": {:.6}}}\n",
                            "    ]}}"
                        ),
                        json_escape(name),
                        data.node_count(),
                        data.edge_count(),
                        pattern.node_count(),
                        pattern.diameter(),
                        churn,
                        churn_edges,
                        updates,
                        batch,
                        batched_speedup,
                        inc_secs,
                        rec_secs
                    ));
                }
            }
        }
    }

    // ── Standing queries: shared-substrate service vs independent sessions ──────
    // Six overlapping-label-signature patterns stand over one mutating chain. The
    // service applies each delta once — one edge-ball sweep pair, one shared dirty-
    // region extraction fanned out to all six patterns — where the independent
    // baseline runs six private `IncrementalMatcher` sessions, each paying its own
    // substrate, sweeps and extraction. The `standing_query` blob records
    // patterns×updates/sec and the shared-over-independent ratio (CI gates ≥ 1.2×).
    {
        use ssim_core::service::QueryService;
        use ssim_experiments::workloads::standing_query_workload;

        let (data, patterns) = standing_query_workload(3000);
        let config = MatchConfig::basic();
        let updates = 6usize;
        let churn_edges = ((data.edge_count() as f64 * 0.005).ceil() as usize).max(1);
        let stream = delta_stream(&data, churn_edges, updates, 0x5eed_0002);

        // Correctness gate + warm-up: the service must track the independent sessions
        // bit for bit through the whole stream before anything is timed.
        {
            let mut service = QueryService::new(data.clone());
            let ids: Vec<_> = patterns
                .iter()
                .map(|q| service.register(q, config))
                .collect();
            let mut sessions: Vec<IncrementalMatcher> = patterns
                .iter()
                .map(|q| IncrementalMatcher::new(q, data.clone(), config))
                .collect();
            for delta in &stream {
                service.apply(delta).expect("stream validates");
                for (id, session) in ids.iter().zip(sessions.iter_mut()) {
                    session.apply(delta).expect("stream validates");
                    assert_eq!(
                        service.output(*id).unwrap(),
                        session.output(),
                        "service diverged from its independent session"
                    );
                }
            }
        }

        // Construction is untimed on both sides — standing queries register once and
        // live for many updates; the applies are the serving cost.
        let stream_runs = 5usize;
        let mut shared_times = Vec::with_capacity(stream_runs);
        let mut independent_times = Vec::with_capacity(stream_runs);
        let mut sweep_radii = 0usize;
        let mut sweep_consumers = 0usize;
        let mut substrate_builds = 0usize;
        let mut substrate_reuses = 0usize;
        for _ in 0..stream_runs {
            let mut service = QueryService::new(data.clone());
            for q in &patterns {
                service.register(q, config);
            }
            let start = Instant::now();
            for delta in &stream {
                let update = service.apply(delta).expect("stream validates");
                sweep_radii = update.sharing.edge_sweep_radii;
                sweep_consumers = update.sharing.edge_sweep_consumers;
                substrate_builds = update.sharing.substrate_builds;
                substrate_reuses = update.sharing.substrate_reuses;
            }
            shared_times.push(start.elapsed().as_secs_f64());

            let mut sessions: Vec<IncrementalMatcher> = patterns
                .iter()
                .map(|q| IncrementalMatcher::new(q, data.clone(), config))
                .collect();
            let start = Instant::now();
            for delta in &stream {
                for session in sessions.iter_mut() {
                    session.apply(delta).expect("stream validates");
                }
            }
            independent_times.push(start.elapsed().as_secs_f64());
        }
        shared_times.sort_by(f64::total_cmp);
        independent_times.sort_by(f64::total_cmp);
        let shared_secs = shared_times[shared_times.len() / 2];
        let independent_secs = independent_times[independent_times.len() / 2];
        let ratio = independent_secs / shared_secs;
        let pattern_updates_per_sec = (patterns.len() * updates) as f64 / shared_secs;
        eprintln!(
            "standing-query |V|={}: {} patterns x {updates} updates — independent {:.3} ms, shared {:.3} ms, {ratio:.2}x ({pattern_updates_per_sec:.0} pattern-updates/s; sweeps {sweep_radii} radius for {sweep_consumers} consumers, cache {substrate_reuses} reuses / {substrate_builds} builds)",
            data.node_count(),
            patterns.len(),
            independent_secs * 1e3,
            shared_secs * 1e3
        );
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"standing-query-chain\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": 3, \"pattern_diameter\": 2,\n",
                "     \"standing_query\": {{\"patterns\": {}, \"updates\": {}, ",
                "\"churn_edges\": {}, \"pattern_updates_per_sec\": {:.1}, ",
                "\"shared_over_independent\": {:.3}, \"edge_sweep_radii\": {}, ",
                "\"edge_sweep_consumers\": {}, \"substrate_reuses\": {}, ",
                "\"substrate_builds\": {}}},\n",
                "     \"configs\": [\n",
                "      {{\"name\": \"service/standing_query_shared\", \"seconds_per_stream\": {:.6}}},\n",
                "      {{\"name\": \"service/standing_query_independent\", \"seconds_per_stream\": {:.6}}}\n",
                "    ]}}"
            ),
            data.node_count(),
            data.edge_count(),
            patterns.len(),
            updates,
            churn_edges,
            pattern_updates_per_sec,
            ratio,
            sweep_radii,
            sweep_consumers,
            substrate_reuses,
            substrate_builds,
            shared_secs,
            independent_secs
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"match_engine\",\n  \"bench_nodes\": {},\n",
            "  \"bench_pattern_nodes\": {},\n  \"runs_per_config\": {},\n",
            "  \"threads\": {},\n  \"datasets\": [\n{}\n  ]\n}}\n"
        ),
        BENCH_NODES,
        BENCH_PATTERN_NODES,
        runs,
        threads,
        dataset_blobs.join(",\n")
    );

    // Emit at the workspace root: crates/bench/../../BENCH_match.json.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_match.json");
    std::fs::write(&path, &json).expect("write BENCH_match.json");
    eprintln!("wrote {}", path.display());
}

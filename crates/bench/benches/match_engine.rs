//! Engine trajectory bench: times the matching engine's configurations on the standard
//! workload and emits `BENCH_match.json` at the workspace root so future engine work has a
//! baseline to beat.
//!
//! Configurations measured, on `workload()` at `BENCH_NODES` for every dataset family:
//!
//! * `seed/match` — the seed's engine (naive fixpoint, sequential, `|V|`-sized ball
//!   relations) running plain `Match`,
//! * `seed/match_plus` — the seed's engine running `Match+`,
//! * `engine/match` — worklist + compact balls + sliding `BallForest` + parallel running
//!   plain `Match`,
//! * `engine/match_plus` — the full fast engine running `Match+`,
//! * `engine/match_freshballs` — the fast engine with `BallStrategy::FreshBfs`, isolating
//!   the ball-reuse layer: `ball_reuse` records its time over `engine/match`'s plus the
//!   fraction of balls the forest reused.
//!
//! Two high-overlap rows (`overlap-chain`, `overlap-cluster`) stress the sliding forest
//! where adjacent centers share most of their balls — the workloads the incremental
//! strategy exists for.
//!
//! For each configuration the JSON records mean seconds per run, processed balls per
//! second and data nodes per second, plus the speedup of the fast engine over the seed
//! engine. Run with `cargo bench --bench match_engine`.

use ssim_bench::{workload, BenchWorkload, BENCH_NODES, BENCH_PATTERN_NODES};
use ssim_core::ball::BallStrategy;
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_experiments::workloads::DatasetKind;
use std::time::Instant;

/// One measured configuration.
struct ConfigResult {
    name: &'static str,
    seconds: f64,
    balls_per_sec: f64,
    nodes_per_sec: f64,
    subgraphs: usize,
    matched_nodes: usize,
    balls_built: usize,
    balls_reused: usize,
}

/// Times `runs` executions after one warm-up and returns the mean seconds plus the output.
fn time_config(
    pattern: &ssim_graph::Pattern,
    data: &ssim_graph::Graph,
    config: &MatchConfig,
    runs: usize,
) -> (f64, MatchOutput) {
    let warmup = strong_simulation(pattern, data, config);
    let start = Instant::now();
    for _ in 0..runs {
        let out = strong_simulation(pattern, data, config);
        assert_eq!(
            out.subgraphs.len(),
            warmup.subgraphs.len(),
            "nondeterministic output"
        );
    }
    (start.elapsed().as_secs_f64() / runs as f64, warmup)
}

fn measure(
    name: &'static str,
    w: &BenchWorkload,
    config: &MatchConfig,
    runs: usize,
) -> ConfigResult {
    let (seconds, out) = time_config(&w.pattern, &w.data, config, runs);
    ConfigResult {
        name,
        seconds,
        balls_per_sec: out.stats.balls_processed as f64 / seconds,
        nodes_per_sec: w.data.node_count() as f64 / seconds,
        subgraphs: out.subgraphs.len(),
        matched_nodes: out.matched_node_count(),
        balls_built: out.stats.balls_built,
        balls_reused: out.stats.balls_reused,
    }
}

/// Fraction of processed balls the forest reused (0 for fresh strategies).
fn reused_fraction(built: usize, reused: usize) -> f64 {
    let total = built + reused;
    if total == 0 {
        0.0
    } else {
        reused as f64 / total as f64
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A long thick chain (each node linked to the next two) with a diameter-2 path pattern:
/// every radius-2 ball shares all but a couple of nodes with its neighbour's, so the
/// forest slides along the whole chain repairing a handful of distances per center.
fn overlap_chain() -> (&'static str, ssim_graph::Graph, ssim_graph::Pattern) {
    use ssim_graph::{Graph, Label, Pattern};
    let n = 3000u32;
    // One matchable 0/1 prefix; the long tail is ball-construction-bound: its labels
    // never seed a candidate, so per-ball cost there is the ball build itself.
    let labels: Vec<Label> = (0..n)
        .map(|i| Label(if i < 64 { i % 2 } else { 2 }))
        .collect();
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.extend((0..n - 2).map(|i| (i, i + 2)));
    let data = Graph::from_edges(labels, &edges).unwrap();
    let pattern =
        Pattern::from_edges(vec![Label(0), Label(1), Label(0)], &[(0, 1), (1, 2)]).unwrap();
    ("overlap-chain", data, pattern)
}

/// Dense communities chained in a ring: centers inside one community see nearly identical
/// balls, so slides repair a handful of distances instead of re-visiting the community.
fn overlap_cluster() -> (&'static str, ssim_graph::Graph, ssim_graph::Pattern) {
    use ssim_graph::{Graph, Label, Pattern};
    let communities = 40u32;
    let size = 24u32;
    let n = communities * size;
    // Pattern labels live in the first few communities; the rest carry a filler label,
    // so their balls are construction-bound like the unlabelled bulk of a real graph.
    let labels: Vec<Label> = (0..n)
        .map(|i| Label(if i < 4 * size { i % 3 } else { 3 }))
        .collect();
    let mut edges = Vec::new();
    for c in 0..communities {
        let base = c * size;
        for i in 0..size {
            // Ring plus two chords per node keeps the community diameter tiny.
            edges.push((base + i, base + (i + 1) % size));
            edges.push((base + i, base + (i + 5) % size));
            edges.push((base + i, base + (i + 11) % size));
        }
        // One bridge to the next community.
        edges.push((base + size - 1, ((c + 1) % communities) * size));
    }
    let data = Graph::from_edges(labels, &edges).unwrap();
    let pattern =
        Pattern::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
    ("overlap-cluster", data, pattern)
}

fn main() {
    // `cargo test` may execute bench targets in test mode; only benchmark under
    // `cargo bench`.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let runs = 9usize;
    let threads = ssim_core::parallel::available_threads();
    let configs: [(&'static str, MatchConfig); 5] = [
        ("seed/match", MatchConfig::seed_reference()),
        (
            "seed/match_plus",
            MatchConfig {
                minimize_query: true,
                dual_filter: true,
                connectivity_pruning: true,
                ..MatchConfig::seed_reference()
            },
        ),
        ("engine/match", MatchConfig::basic()),
        ("engine/match_plus", MatchConfig::optimized()),
        (
            "engine/match_freshballs",
            MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs),
        ),
    ];

    let mut dataset_blobs = Vec::new();
    for dataset in DatasetKind::all() {
        let w = workload(dataset);
        eprintln!(
            "dataset {} : |V|={} |E|={} pattern |Vq|={} dQ={}",
            dataset.name(),
            w.data.node_count(),
            w.data.edge_count(),
            w.pattern.node_count(),
            w.pattern.diameter()
        );
        let results: Vec<ConfigResult> = configs
            .iter()
            .map(|(name, config)| measure(name, &w, config, runs))
            .collect();
        // Headline: the optimised matcher on the new engine vs the seed's naive
        // sequential engine (its shipped `Match`). Same-configuration ratios are also
        // recorded so engine regressions stay visible.
        let headline = results[0].seconds / results[3].seconds;
        let speedup_plus = results[1].seconds / results[3].seconds;
        let speedup_basic = results[0].seconds / results[2].seconds;
        // Ball-reuse layer in isolation: the fast engine with fresh balls vs the same
        // engine with the sliding forest (same config otherwise).
        let ball_reuse_speedup = results[4].seconds / results[2].seconds;
        let ball_reused_fraction = reused_fraction(results[2].balls_built, results[2].balls_reused);
        for r in &results {
            eprintln!(
                "  {:<22} {:>10.4} ms/run  {:>12.0} balls/s  {:>12.0} nodes/s  ({} subgraphs)",
                r.name,
                r.seconds * 1e3,
                r.balls_per_sec,
                r.nodes_per_sec,
                r.subgraphs
            );
        }
        eprintln!(
            "  speedup: Match+ vs seed engine {headline:.2}x (same-config: Match {speedup_basic:.2}x, Match+ {speedup_plus:.2}x)"
        );
        eprintln!(
            "  ball reuse: {:.0}% of balls reused, {ball_reuse_speedup:.2}x vs fresh balls",
            ball_reused_fraction * 100.0
        );
        let config_json: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "      {{\"name\": \"{}\", \"seconds_per_run\": {:.6}, ",
                        "\"balls_per_sec\": {:.1}, \"nodes_per_sec\": {:.1}, ",
                        "\"subgraphs\": {}, \"matched_nodes\": {}, ",
                        "\"balls_built\": {}, \"balls_reused\": {}}}"
                    ),
                    json_escape(r.name),
                    r.seconds,
                    r.balls_per_sec,
                    r.nodes_per_sec,
                    r.subgraphs,
                    r.matched_nodes,
                    r.balls_built,
                    r.balls_reused
                )
            })
            .collect();
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": {}, \"pattern_diameter\": {},\n",
                "     \"speedup_match_plus_vs_seed_engine\": {:.3},\n",
                "     \"speedup_match_same_config\": {:.3}, ",
                "\"speedup_match_plus_same_config\": {:.3},\n",
                "     \"ball_reuse\": {{\"reused_fraction\": {:.4}, ",
                "\"speedup_vs_fresh\": {:.3}}},\n",
                "     \"configs\": [\n{}\n    ]}}"
            ),
            json_escape(dataset.name()),
            w.data.node_count(),
            w.data.edge_count(),
            w.pattern.node_count(),
            w.pattern.diameter(),
            headline,
            speedup_basic,
            speedup_plus,
            ball_reused_fraction,
            ball_reuse_speedup,
            config_json.join(",\n")
        ));
    }

    // Cascade stress: a self-loop pattern over a long path forces the refinement to strip
    // the candidate set one layer per pass, the worst case the worklist engine exists for.
    // `Match+` computes the (empty) global dual-simulation relation and skips every ball,
    // so this row isolates the refinement algorithms.
    {
        let n = 4000u32;
        let pattern =
            ssim_graph::Pattern::from_edges(vec![ssim_graph::Label(0)], &[(0, 0)]).unwrap();
        let chain = ssim_graph::Graph::from_edges(
            vec![ssim_graph::Label(0); n as usize],
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
        .unwrap();
        let seed_cfg = MatchConfig {
            minimize_query: true,
            dual_filter: true,
            connectivity_pruning: true,
            ..MatchConfig::seed_reference()
        };
        let (seed_secs, seed_out) = time_config(&pattern, &chain, &seed_cfg, runs);
        let (engine_secs, engine_out) =
            time_config(&pattern, &chain, &MatchConfig::optimized(), runs);
        assert_eq!(seed_out.subgraphs.len(), engine_out.subgraphs.len());
        // Unlike the dataset rows' cross-config headline, this is a *same-config*
        // comparison (Match+ on both engines), isolating the refinement algorithm.
        let cascade_speedup = seed_secs / engine_secs;
        eprintln!(
            "cascade chain n={n}: seed {:.3} ms, engine {:.3} ms — {cascade_speedup:.1}x (same-config Match+)",
            seed_secs * 1e3,
            engine_secs * 1e3
        );
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"cascade-chain\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": 1, \"pattern_diameter\": 0,\n",
                "     \"speedup_match_plus_same_config\": {:.3},\n",
                "     \"configs\": [\n",
                "      {{\"name\": \"seed/match_plus\", \"seconds_per_run\": {:.6}}},\n",
                "      {{\"name\": \"engine/match_plus\", \"seconds_per_run\": {:.6}}}\n",
                "    ]}}"
            ),
            n,
            n - 1,
            cascade_speedup,
            seed_secs,
            engine_secs
        ));
    }

    // High-overlap workloads: adjacent centers share most of their balls, the case the
    // sliding BallForest exists for. Both rows compare the fast engine's plain `Match`
    // with incremental vs fresh balls (same configuration otherwise).
    for (name, data, pattern) in [overlap_chain(), overlap_cluster()] {
        let incr_cfg = MatchConfig::basic();
        let fresh_cfg = MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs);
        let (incr_secs, incr_out) = time_config(&pattern, &data, &incr_cfg, runs);
        let (fresh_secs, fresh_out) = time_config(&pattern, &data, &fresh_cfg, runs);
        assert_eq!(incr_out.subgraphs.len(), fresh_out.subgraphs.len());
        let speedup = fresh_secs / incr_secs;
        let fraction = reused_fraction(incr_out.stats.balls_built, incr_out.stats.balls_reused);
        eprintln!(
            "{name} |V|={}: fresh {:.3} ms, incremental {:.3} ms — {speedup:.2}x, {:.0}% balls reused",
            data.node_count(),
            fresh_secs * 1e3,
            incr_secs * 1e3,
            fraction * 100.0
        );
        dataset_blobs.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
                "\"pattern_nodes\": {}, \"pattern_diameter\": {},\n",
                "     \"ball_reuse\": {{\"reused_fraction\": {:.4}, ",
                "\"speedup_vs_fresh\": {:.3}}},\n",
                "     \"configs\": [\n",
                "      {{\"name\": \"engine/match\", \"seconds_per_run\": {:.6}, ",
                "\"balls_built\": {}, \"balls_reused\": {}}},\n",
                "      {{\"name\": \"engine/match_freshballs\", \"seconds_per_run\": {:.6}, ",
                "\"balls_built\": {}, \"balls_reused\": {}}}\n",
                "    ]}}"
            ),
            json_escape(name),
            data.node_count(),
            data.edge_count(),
            pattern.node_count(),
            pattern.diameter(),
            fraction,
            speedup,
            incr_secs,
            incr_out.stats.balls_built,
            incr_out.stats.balls_reused,
            fresh_secs,
            fresh_out.stats.balls_built,
            fresh_out.stats.balls_reused
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"match_engine\",\n  \"bench_nodes\": {},\n",
            "  \"bench_pattern_nodes\": {},\n  \"runs_per_config\": {},\n",
            "  \"threads\": {},\n  \"datasets\": [\n{}\n  ]\n}}\n"
        ),
        BENCH_NODES,
        BENCH_PATTERN_NODES,
        runs,
        threads,
        dataset_blobs.join(",\n")
    );

    // Emit at the workspace root: crates/bench/../../BENCH_match.json.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_match.json");
    std::fs::write(&path, &json).expect("write BENCH_match.json");
    eprintln!("wrote {}", path.display());
}

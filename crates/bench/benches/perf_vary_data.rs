//! Figures 8(e)–8(h): running time while varying the data graph (size and density).
//!
//! Reproduced shape: all simulation-family algorithms scale smoothly with |V| and with the
//! density α, while VF2's cost explodes with data size (which is why the paper reports it
//! only on the small real-life datasets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssim_bench::workload_sized;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_experiments::algorithms::{run_algorithm, AlgorithmKind};
use ssim_experiments::workloads::{experiment_pattern, DatasetKind};
use std::time::Duration;

/// Figures 8(e)/(f)/(g): vary |V| on each dataset family.
fn bench_vary_data_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8e-8g_time_vs_data_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for dataset in DatasetKind::all() {
        for nodes in [200usize, 600] {
            let w = workload_sized(dataset, nodes, 5);
            let include_vf2 = dataset != DatasetKind::Synthetic;
            for kind in AlgorithmKind::performance_set(include_vf2) {
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{}_{}", kind.name(), dataset.name()),
                        format!("V={nodes}"),
                    ),
                    &w,
                    |b, w| b.iter(|| run_algorithm(kind, &w.pattern, &w.data)),
                );
            }
        }
    }
    group.finish();
}

/// Figure 8(h): vary the data density α on synthetic data.
fn bench_vary_data_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8h_time_vs_data_density");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for alpha in [1.05f64, 1.3] {
        let data = DatasetKind::Synthetic.generate_with_density(400, alpha, 42);
        let pattern = experiment_pattern(&data, 5, 7);
        for (name, config) in [
            ("Match", MatchConfig::basic()),
            ("Match+", MatchConfig::optimized()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("alpha={alpha}")),
                &(&pattern, &data),
                |b, (pattern, data)| b.iter(|| strong_simulation(pattern, data, &config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_data_size, bench_vary_data_density);
criterion_main!(benches);

//! Distributed strong simulation (Section 4.3).
//!
//! Reproduced claim: strong simulation has data locality, so it can be evaluated over a
//! partitioned graph with bounded shipment. The bench times the simulated distributed run
//! for different site counts and partition strategies and compares it against the
//! centralized matcher on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssim_bench::{workload, BenchWorkload};
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_distributed::{distributed_strong_simulation, DistributedConfig, PartitionStrategy};
use ssim_experiments::workloads::DatasetKind;
use std::time::Duration;

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_strong_simulation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let BenchWorkload { data, pattern, .. } = workload(DatasetKind::AmazonLike);

    group.bench_function("centralized", |b| {
        b.iter(|| strong_simulation(&pattern, &data, &MatchConfig::basic()))
    });
    for sites in [2usize, 4] {
        for (name, strategy) in [
            ("range", PartitionStrategy::Range),
            ("hash", PartitionStrategy::Hash),
        ] {
            let config = DistributedConfig {
                sites,
                strategy,
                minimize_query: false,
                ..DistributedConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("distributed_{name}"), format!("sites={sites}")),
                &config,
                |b, config| {
                    b.iter(|| {
                        distributed_strong_simulation(&pattern, &data, config)
                            .expect("valid distributed config")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);

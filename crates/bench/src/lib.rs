//! Shared helpers for the Criterion benchmarks.
//!
//! Every bench target in `benches/` regenerates one table or figure group of the paper's
//! evaluation (see DESIGN.md for the experiment index). The benches run at a reduced,
//! laptop-friendly scale; the absolute numbers differ from the paper's cluster, but the
//! relative ordering of the algorithms — the result being reproduced — is preserved.

use ssim_datasets::patterns::extract_pattern;
use ssim_experiments::workloads::{experiment_pattern, DatasetKind};
use ssim_graph::{Graph, Pattern};

/// Default data-graph size used by the benches.
pub const BENCH_NODES: usize = 400;

/// Default pattern size used by the benches (the paper fixes `|Vq| = 10`).
pub const BENCH_PATTERN_NODES: usize = 6;

/// A prepared benchmark workload: one data graph plus one extracted pattern.
pub struct BenchWorkload {
    /// The data graph.
    pub data: Graph,
    /// The pattern to match.
    pub pattern: Pattern,
    /// Dataset family the workload came from.
    pub dataset: DatasetKind,
}

/// Builds the standard workload for a dataset family.
pub fn workload(dataset: DatasetKind) -> BenchWorkload {
    workload_sized(dataset, BENCH_NODES, BENCH_PATTERN_NODES)
}

/// Builds a workload with explicit sizes.
pub fn workload_sized(dataset: DatasetKind, nodes: usize, pattern_nodes: usize) -> BenchWorkload {
    let data = dataset.generate(nodes, 42);
    let pattern = extract_pattern(&data, pattern_nodes, 7)
        .filter(|p| p.node_count() == pattern_nodes)
        .unwrap_or_else(|| experiment_pattern(&data, pattern_nodes, 7));
    BenchWorkload {
        data,
        pattern,
        dataset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_for_every_dataset() {
        for dataset in DatasetKind::all() {
            let w = workload_sized(dataset, 150, 4);
            assert_eq!(w.data.node_count(), 150);
            assert_eq!(w.pattern.node_count(), 4);
            assert_eq!(w.dataset, dataset);
        }
    }
}

//! Incremental distributed matching: coordinator-side delta maintenance with per-site
//! dirty-ball routing.
//!
//! The coordinator owns the mutable state — the data graph, the global dual-simulation
//! fixpoint and the `Gm` extraction, all maintained by the shared
//! [`ssim_core::incremental::IncrementalState`] machinery — and, per
//! [`GraphDelta`], computes the dirty-center set (the dQ-bounded locality sweep of
//! Prop. 3) exactly like the centralized driver. The *routing* is what distribution
//! adds: each dirty center is shipped to the site owning it, sites re-evaluate only
//! their own dirty balls (sliding a forest along their slice of the locality order, as
//! always), and the coordinator splices the returned rows into its cached result.
//! [`TrafficStats::dirty_balls`] / [`TrafficStats::clean_balls`] account for the split
//! and always sum to `|V|`.
//!
//! [`UpdatePlan::Recompute`] (on [`DistributedConfig::update_plan`]) is the oracle: it
//! re-runs the full one-shot [`distributed_strong_simulation`] per delta. The
//! differential suite holds both plans bit-identical along random delta streams.
//!
//! # Surviving mid-delta site loss
//!
//! The maintained coordinator state (fixpoint, `Gm`, overlay) is advanced *before* the
//! fan-out, so a site failing during an apply can only degrade that apply's **rows**,
//! never the state — [`IncrementalDistributed::apply_with_faults`] returns a degraded
//! [`DistributedOutput`] whose [`DistributedOutput::lost_centers`] records exactly
//! which cached rows are stale/missing. The *next* apply heals: previously-lost centers
//! are unioned into its dirty set, re-routed to live sites, and their fresh rows
//! spliced in — a fault-free apply after a degraded one converges the session back to
//! the bit-exact fault-free result.
//!
//! [`TrafficStats::dirty_balls`]: crate::runtime::TrafficStats::dirty_balls
//! [`TrafficStats::clean_balls`]: crate::runtime::TrafficStats::clean_balls

use crate::error::DistError;
use crate::fault::FaultPlan;
use crate::runtime::{
    distributed_strong_simulation, distributed_with_faults, distributed_with_prepared_cached,
    distributed_with_prepared_counted, CoordinatorCache, DistributedConfig, DistributedOutput,
};
use ssim_core::incremental::{splice_rows, IncrementalState, UpdatePlan};
use ssim_core::simulation::RefineStrategy;
use ssim_graph::{Graph, GraphDelta, OverlayGraph, Pattern};

/// Per-plan coordinator state. The distributed runtime never deduplicates, so the
/// cached `output.subgraphs` doubles as the row cache and splices happen in place.
/// The incremental plan carries a [`CoordinatorCache`] so the partition and the
/// substrate locality order survive across applies instead of being rebuilt per delta.
enum PlanState {
    Incremental {
        state: Box<IncrementalState>,
        cache: CoordinatorCache,
    },
    Recompute {
        data: Graph,
    },
}

/// A distributed strong-simulation session over a mutating data graph.
///
/// Construct once, then feed [`GraphDelta`]s through
/// [`IncrementalDistributed::apply`]; the cached [`DistributedOutput`] after every apply
/// carries subgraphs bit-identical to a one-shot
/// [`distributed_strong_simulation`] on the updated graph (whose traffic counters, by
/// contrast, describe only the update's own work).
pub struct IncrementalDistributed {
    pattern: Pattern,
    config: DistributedConfig,
    plan: PlanState,
    output: DistributedOutput,
}

impl IncrementalDistributed {
    /// Runs the initial distributed match over `data` and caches the coordinator state.
    /// Fails on an invalid [`DistributedConfig`] (the same validation every one-shot
    /// entry point runs).
    pub fn new(
        pattern: &Pattern,
        data: Graph,
        config: DistributedConfig,
    ) -> Result<Self, DistError> {
        let (plan, output) = match config.update_plan {
            UpdatePlan::Recompute => {
                let output = distributed_strong_simulation(pattern, &data, &config)?;
                (PlanState::Recompute { data }, output)
            }
            UpdatePlan::Incremental => {
                // Validate before building the (expensive) maintained state.
                config.validate(data.node_count())?;
                let state = Box::new(IncrementalState::new(
                    pattern,
                    data,
                    config.minimize_query,
                    None,
                    config.dual_filter,
                    config.ball_substrate,
                    RefineStrategy::Worklist,
                ));
                let mut cache = CoordinatorCache::new();
                // At construction the overlay is flat, so its base CSR *is* the graph.
                debug_assert!(state.data.is_flat());
                let output = distributed_with_prepared_cached(
                    pattern,
                    state.data.base(),
                    &config,
                    state.prepared(),
                    None,
                    &mut cache,
                    None,
                )?;
                (PlanState::Incremental { state, cache }, output)
            }
        };
        Ok(IncrementalDistributed {
            pattern: pattern.clone(),
            config,
            plan,
            output,
        })
    }

    /// The current data graph (after every applied delta), materialised flat — an
    /// `O(|V|+|E|)` merge on the incremental plan, meant for oracles and tests. Use
    /// [`IncrementalDistributed::overlay`] to inspect the serving substrate directly.
    pub fn data(&self) -> Graph {
        match &self.plan {
            PlanState::Incremental { state, .. } => state.data.to_graph(),
            PlanState::Recompute { data } => data.clone(),
        }
    }

    /// The versioned serving substrate; `None` on the recompute oracle plan.
    pub fn overlay(&self) -> Option<&OverlayGraph> {
        match &self.plan {
            PlanState::Incremental { state, .. } => Some(&state.data),
            PlanState::Recompute { .. } => None,
        }
    }

    /// The distributed match result over the current graph. On the incremental plan the
    /// traffic counters describe the most recent update's work (dirty balls routed,
    /// shipping for those balls), not a full pass. After a degraded apply,
    /// [`DistributedOutput::lost_centers`] lists the rows this cache is missing.
    pub fn output(&self) -> &DistributedOutput {
        &self.output
    }

    /// Applies one validated batch of edge updates: the coordinator maintains its
    /// state, routes the dirty centers to their owning sites and splices the returned
    /// rows. Fails (leaving the session untouched) when the delta does not validate.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<&DistributedOutput, DistError> {
        self.apply_inner(delta, None)
    }

    /// [`IncrementalDistributed::apply`] under a scripted [`FaultPlan`]: the apply's
    /// fan-out runs under the supervision loop (the configuration must carry a
    /// [`crate::fault::RecoveryPolicy`] for a non-empty plan), and chunks lost past the
    /// budget degrade only this apply's rows — the maintained state stays exact, and the
    /// next apply re-routes the lost centers ([lost-center healing](self)).
    pub fn apply_with_faults(
        &mut self,
        delta: &GraphDelta,
        faults: &FaultPlan,
    ) -> Result<&DistributedOutput, DistError> {
        self.apply_inner(delta, Some(faults))
    }

    /// Applies a batch of deltas as **one** maintenance step, mirroring
    /// [`ssim_core::incremental::IncrementalMatcher::apply_batch`]: on the incremental
    /// plan the stream is staged on a cheap overlay clone to validate its
    /// order-sensitive legality up front, folded into its net delta
    /// ([`GraphDelta::then`]) and fed through a single apply — one dirty sweep, one
    /// routed fan-out. The recompute oracle applies the stream sequentially and re-runs
    /// one full pass on the final graph. A mid-stream validation error leaves the
    /// session untouched.
    pub fn apply_batch(&mut self, deltas: &[GraphDelta]) -> Result<&DistributedOutput, DistError> {
        let [first, rest @ ..] = deltas else {
            return Ok(&self.output);
        };
        if rest.is_empty() {
            return self.apply(first);
        }
        match &mut self.plan {
            PlanState::Recompute { data } => {
                let mut new_data = data.apply_delta(first).map_err(DistError::from)?;
                for d in rest {
                    new_data = new_data.apply_delta(d).map_err(DistError::from)?;
                }
                self.output =
                    distributed_strong_simulation(&self.pattern, &new_data, &self.config)?;
                *data = new_data;
                Ok(&self.output)
            }
            PlanState::Incremental { state, .. } => {
                let mut staged = state.data.clone();
                for d in deltas {
                    staged.apply_delta(d).map_err(DistError::from)?;
                }
                let mut net = first.clone();
                for d in rest {
                    net = net.then(d);
                }
                self.apply_inner(&net, None)
            }
        }
    }

    fn apply_inner(
        &mut self,
        delta: &GraphDelta,
        faults: Option<&FaultPlan>,
    ) -> Result<&DistributedOutput, DistError> {
        // Gate before any state is advanced, so a rejected plan leaves the session
        // untouched (the runtime's own gate would only fire after `advance`).
        if faults.is_some_and(|plan| !plan.is_empty()) && self.config.recovery.is_none() {
            return Err(DistError::FaultPlanNeedsRecovery);
        }
        match &mut self.plan {
            PlanState::Recompute { data } => {
                let new_data = data.apply_delta(delta).map_err(DistError::from)?;
                // The oracle recomputes every row per apply, so a previous degraded
                // apply heals here by construction.
                self.output = match faults {
                    Some(plan) => {
                        distributed_with_faults(&self.pattern, &new_data, &self.config, plan)?
                    }
                    None => distributed_strong_simulation(&self.pattern, &new_data, &self.config)?,
                };
                *data = new_data;
            }
            PlanState::Incremental { state, cache } => {
                let mut effect = state.advance(delta).map_err(DistError::from)?;
                if effect.gm_reextracted {
                    // The cached locality order ranked the *old* extraction's ids.
                    cache.invalidate_locality();
                }
                // Lost-center healing: centers a previous degraded apply lost have no
                // trustworthy cached rows. Marking them dirty routes them to (live)
                // sites again and splices their fresh rows in below — and removes any
                // stale cached row even if this apply loses them again.
                for &center in &self.output.lost_centers {
                    effect.dirty.insert(center.index());
                }
                let mut out = match state.prepared() {
                    // The serving path: the whole run stays inside the maintained `Gm`
                    // (or short-circuits on an empty fixpoint) — no flat graph at all.
                    Some(p) if p.gm.is_some() || !p.relation.is_total() => {
                        distributed_with_prepared_counted(
                            &self.pattern,
                            state.data.node_count(),
                            &self.config,
                            p,
                            Some(&effect.dirty),
                            cache,
                            faults,
                        )?
                    }
                    // Full-graph-substrate shapes localise in the raw data graph:
                    // materialise the overlay once per apply (oracle shapes only).
                    p => {
                        let flat = state.data.to_graph();
                        distributed_with_prepared_cached(
                            &self.pattern,
                            &flat,
                            &self.config,
                            p,
                            Some(&effect.dirty),
                            cache,
                            faults,
                        )?
                    }
                };
                let fresh = std::mem::replace(
                    &mut out.subgraphs,
                    std::mem::take(&mut self.output.subgraphs),
                );
                splice_rows(&mut out.subgraphs, &effect.dirty, fresh);
                out.traffic.result_subgraphs = out.subgraphs.len();
                self.output = out;
            }
        }
        Ok(&self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::RecoveryPolicy;
    use crate::partition::PartitionStrategy;
    use ssim_core::ball::BallSubstrate;
    use ssim_datasets::patterns::extract_pattern;
    use ssim_datasets::synthetic::{synthetic, SyntheticConfig};
    use ssim_graph::NodeId;

    fn assert_same_subgraphs(a: &DistributedOutput, b: &DistributedOutput, ctx: &str) {
        // Derived PartialEq on PerfectSubgraph covers every field.
        assert_eq!(a.subgraphs, b.subgraphs, "{ctx}");
    }

    #[test]
    fn incremental_distributed_tracks_the_recompute_oracle() {
        let data = synthetic(&SyntheticConfig {
            nodes: 160,
            alpha: 1.15,
            labels: 8,
            seed: 11,
        });
        let pattern = extract_pattern(&data, 3, 7).expect("pattern extraction succeeds");
        for dual_filter in [false, true] {
            for substrate in [BallSubstrate::MatchGraph, BallSubstrate::FullGraph] {
                let base = DistributedConfig {
                    sites: 3,
                    strategy: PartitionStrategy::Range,
                    minimize_query: false,
                    dual_filter,
                    ball_substrate: substrate,
                    ..DistributedConfig::default()
                };
                let mut inc = IncrementalDistributed::new(&pattern, data.clone(), base)
                    .expect("valid distributed config");
                let mut ora = IncrementalDistributed::new(
                    &pattern,
                    data.clone(),
                    DistributedConfig {
                        update_plan: UpdatePlan::Recompute,
                        ..base
                    },
                )
                .expect("valid distributed config");
                assert_same_subgraphs(inc.output(), ora.output(), "initial");
                // Delete an existing edge, then add a fresh one.
                let (s, t) = data.edges().next().expect("generator emits edges");
                let mut d1 = GraphDelta::new();
                d1.delete_edge(s, t);
                let fresh = data
                    .nodes()
                    .find(|&v| !data.has_edge(v, NodeId(0)) && v != NodeId(0))
                    .expect("some non-edge exists");
                let mut d2 = GraphDelta::new();
                d2.insert_edge(fresh, NodeId(0));
                for (i, delta) in [d1, d2].iter().enumerate() {
                    inc.apply(delta).unwrap();
                    ora.apply(delta).unwrap();
                    let ctx = format!("step {i} dual_filter={dual_filter} {substrate:?}");
                    assert_same_subgraphs(inc.output(), ora.output(), &ctx);
                    // The dirty/clean split always covers the whole graph.
                    let traffic = &inc.output().traffic;
                    assert_eq!(
                        traffic.dirty_balls + traffic.clean_balls,
                        data.node_count(),
                        "{ctx}"
                    );
                    assert!(
                        traffic.dirty_balls < data.node_count(),
                        "{ctx}: a two-edge delta must leave some ball clean"
                    );
                }
            }
        }
    }

    #[test]
    fn degraded_apply_heals_on_the_next_fault_free_apply() {
        let data = synthetic(&SyntheticConfig {
            nodes: 140,
            alpha: 1.15,
            labels: 8,
            seed: 13,
        });
        let pattern = extract_pattern(&data, 3, 5).expect("pattern extraction succeeds");
        let policy = RecoveryPolicy::default();
        let config = DistributedConfig {
            sites: 3,
            strategy: PartitionStrategy::Range,
            minimize_query: false,
            recovery: Some(policy),
            ..DistributedConfig::default()
        };
        let (s, t) = data.edges().next().expect("generator emits edges");
        let mut d1 = GraphDelta::new();
        d1.delete_edge(s, t);
        let fresh = data
            .nodes()
            .find(|&v| !data.has_edge(v, NodeId(0)) && v != NodeId(0))
            .expect("some non-edge exists");
        let mut d2 = GraphDelta::new();
        d2.insert_edge(fresh, NodeId(0));

        // The fault-free reference session.
        let mut oracle = IncrementalDistributed::new(&pattern, data.clone(), config)
            .expect("valid distributed config");
        oracle.apply(&d1).unwrap();
        let oracle_after_d1 = oracle.output().subgraphs.clone();
        oracle.apply(&d2).unwrap();

        // The faulty session: d1's fan-out perma-panics the first chunk of every site
        // past the retry budget, losing whatever dirty chunks exist.
        let mut plan = FaultPlan::none();
        for site in 0..config.sites {
            for round in 0..=policy.chunk_retries {
                plan.panic_chunk(site, 0, round);
            }
        }
        let mut session = IncrementalDistributed::new(&pattern, data.clone(), config)
            .expect("valid distributed config");
        session.apply_with_faults(&d1, &plan).unwrap();
        let degraded = session.output();
        // The delta dirtied at least the deleted edge's endpoints, so a first chunk
        // existed somewhere — and was lost.
        assert!(!degraded.lost_centers.is_empty());
        assert_eq!(
            degraded.traffic.covered_balls + degraded.traffic.lost_balls,
            data.node_count()
        );
        // The degraded cache is exactly the fault-free rows minus the lost centers.
        let lost: std::collections::BTreeSet<NodeId> =
            degraded.lost_centers.iter().copied().collect();
        let expected: Vec<_> = oracle_after_d1
            .iter()
            .filter(|s| !lost.contains(&s.center))
            .cloned()
            .collect();
        assert_eq!(degraded.subgraphs, expected);

        // The next (fault-free) apply re-routes the lost centers: the session converges
        // back to the oracle, bit for bit.
        session.apply(&d2).unwrap();
        assert!(session.output().lost_centers.is_empty());
        assert_same_subgraphs(session.output(), oracle.output(), "post-healing");
        // And the healed dirty set was charged for the extra centers.
        assert_eq!(
            session.output().traffic.dirty_balls + session.output().traffic.clean_balls,
            data.node_count()
        );
    }
}

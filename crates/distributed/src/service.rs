//! Multi-pattern standing queries over the fault-tolerant distributed runtime.
//!
//! The distributed twin of [`ssim_core::service::QueryService`]: one shared
//! epoch-versioned substrate, per-query maintained [`PatternState`], single-sweep delta
//! fan-out (edge-ball sweeps once per distinct radius, one flat materialisation shared
//! by every full-graph-substrate query per apply) — but each query's restricted pass
//! runs through the distributed coordinator: dirty centers routed to their owning
//! sites, rows shipped back and spliced, optionally under a scripted [`FaultPlan`]
//! with per-query lost-center healing exactly as in
//! [`crate::incremental::IncrementalDistributed`].
//!
//! The bit-identity contract carries over: every shared value is a pure function of
//! inputs a private [`IncrementalDistributed`] session would compute for itself, so
//! each query's [`DistributedOutput`] subgraphs track its private session bit for bit.
//!
//! [`IncrementalDistributed`]: crate::incremental::IncrementalDistributed

use crate::error::DistError;
use crate::fault::FaultPlan;
use crate::runtime::{
    distributed_with_prepared_cached, distributed_with_prepared_counted, CoordinatorCache,
    DistributedConfig, DistributedOutput,
};
use ssim_core::incremental::{splice_rows, PatternState};
use ssim_core::service::{QueryId, SharingStats};
use ssim_core::simulation::RefineStrategy;
use ssim_graph::delta::mark_edge_ball_centers;
use ssim_graph::{
    BitSet, Graph, GraphDelta, GraphEpoch, NodeId, Pattern, SnapshotHandle, VersionedGraph,
};
use std::collections::BTreeMap;

struct Session {
    pattern: Pattern,
    config: DistributedConfig,
    state: PatternState,
    /// Partition + locality order survive across applies, exactly like a private
    /// incremental session.
    cache: CoordinatorCache,
    output: DistributedOutput,
}

/// What one [`DistributedQueryService::apply`] did.
#[derive(Debug, Clone)]
pub struct DistServiceUpdate {
    /// Epoch of the published substrate after the apply.
    pub epoch: GraphEpoch,
    /// The overlay compacted back to a flat base CSR during this apply.
    pub compacted: bool,
    /// Cross-pattern sharing accounting (the flat materialisation counts as the
    /// substrate build; region extraction sharing happens site-side and is not
    /// re-counted here).
    pub sharing: SharingStats,
}

/// A registry of standing queries over one shared graph, each served by the
/// distributed runtime. See the [module docs](self).
pub struct DistributedQueryService {
    substrate: VersionedGraph,
    sessions: Vec<Option<Session>>,
}

impl DistributedQueryService {
    /// A service over `data` with no registered queries.
    pub fn new(data: Graph) -> Self {
        DistributedQueryService {
            substrate: VersionedGraph::new(data),
            sessions: Vec::new(),
        }
    }

    /// Registers a standing query and runs its initial distributed match. Fails on an
    /// invalid [`DistributedConfig`]. As in the core service, `config.update_plan` is
    /// ignored — the service is the incremental plan; the recompute oracle exists as
    /// independent sessions.
    pub fn register(
        &mut self,
        pattern: &Pattern,
        config: DistributedConfig,
    ) -> Result<QueryId, DistError> {
        let data = self.substrate.published();
        config.validate(data.node_count())?;
        let state = PatternState::new(
            pattern,
            data,
            config.minimize_query,
            None,
            config.dual_filter,
            config.ball_substrate,
            RefineStrategy::Worklist,
        );
        let mut cache = CoordinatorCache::new();
        // Mirror `IncrementalDistributed::new`: one unrestricted pass, copy-free off
        // the base CSR while the overlay is flat.
        let output = if data.is_flat() {
            distributed_with_prepared_cached(
                pattern,
                data.base(),
                &config,
                state.prepared(),
                None,
                &mut cache,
                None,
            )?
        } else {
            let flat = data.to_graph();
            distributed_with_prepared_cached(
                pattern,
                &flat,
                &config,
                state.prepared(),
                None,
                &mut cache,
                None,
            )?
        };
        self.sessions.push(Some(Session {
            pattern: pattern.clone(),
            config,
            state,
            cache,
            output,
        }));
        Ok(QueryId(self.sessions.len() - 1))
    }

    /// Removes a standing query; ids are never reused.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        match self.sessions.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    /// Ids of the live registered queries, ascending.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.sessions
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| QueryId(i)))
            .collect()
    }

    /// Number of live registered queries.
    pub fn len(&self) -> usize {
        self.sessions.iter().flatten().count()
    }

    /// `true` when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached distributed result of one query over the current graph. After a
    /// degraded apply its [`DistributedOutput::lost_centers`] lists the rows the cache
    /// is missing; the next apply heals them.
    pub fn output(&self, id: QueryId) -> Option<&DistributedOutput> {
        self.sessions
            .get(id.0)
            .and_then(|s| s.as_ref())
            .map(|s| &s.output)
    }

    /// Epoch of the currently published substrate version.
    pub fn epoch(&self) -> GraphEpoch {
        self.substrate.epoch()
    }

    /// Pins the published substrate version.
    pub fn pin(&self) -> SnapshotHandle {
        self.substrate.pin()
    }

    /// The current data graph, materialised flat — for oracles and tests.
    pub fn data(&self) -> Graph {
        self.substrate.published().to_graph()
    }

    /// Applies one validated delta: lands on the shared substrate once, sweeps dirty
    /// balls once per distinct radius, then fans out per query through the distributed
    /// coordinator. Fails before touching anything when the delta does not validate.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<DistServiceUpdate, DistError> {
        self.apply_inner(delta, None)
    }

    /// [`DistributedQueryService::apply`] under a scripted [`FaultPlan`]. Every
    /// registered query's fan-out runs under the same plan (each restarts the plan's
    /// `(site, chunk, round)` script — sessions are independent supervision scopes), so
    /// a non-empty plan requires *every* query's configuration to carry a recovery
    /// policy. Degraded queries record their lost centers and heal on the next apply.
    pub fn apply_with_faults(
        &mut self,
        delta: &GraphDelta,
        faults: &FaultPlan,
    ) -> Result<DistServiceUpdate, DistError> {
        self.apply_inner(delta, Some(faults))
    }

    /// Applies a batch of deltas as one maintenance step per query: the stream is
    /// staged on a cheap overlay clone to validate its order-sensitive legality up
    /// front, folded into its net delta and fed through a single
    /// [`DistributedQueryService::apply`].
    pub fn apply_batch(&mut self, deltas: &[GraphDelta]) -> Result<DistServiceUpdate, DistError> {
        let [first, rest @ ..] = deltas else {
            return Ok(DistServiceUpdate {
                epoch: self.substrate.epoch(),
                compacted: false,
                sharing: SharingStats {
                    sessions: self.len(),
                    ..SharingStats::default()
                },
            });
        };
        if rest.is_empty() {
            return self.apply(first);
        }
        let mut staged = self.substrate.published().clone();
        for d in deltas {
            staged.apply_delta(d).map_err(DistError::from)?;
        }
        let mut net = first.clone();
        for d in rest {
            net = net.then(d);
        }
        self.apply(&net)
    }

    fn apply_inner(
        &mut self,
        delta: &GraphDelta,
        faults: Option<&FaultPlan>,
    ) -> Result<DistServiceUpdate, DistError> {
        // Gate before any state moves: scripted faults require a recovery policy on
        // every query that will run under them.
        if faults.is_some_and(|plan| !plan.is_empty())
            && self
                .sessions
                .iter()
                .flatten()
                .any(|s| s.config.recovery.is_none())
        {
            return Err(DistError::FaultPlanNeedsRecovery);
        }
        delta
            .validate(self.substrate.published())
            .map_err(DistError::from)?;
        let n = self.substrate.published().node_count();
        let deleted: Vec<(NodeId, NodeId)> = delta.deleted_edges().collect();
        let inserted: Vec<(NodeId, NodeId)> = delta.inserted_edges().collect();

        // Shared dirty sweep: once per distinct radius among the full-graph-localising
        // queries, pre-half on the pre-update graph.
        let mut sweeps: BTreeMap<usize, (BitSet, BitSet)> = BTreeMap::new();
        let mut sweep_consumers = 0usize;
        for s in self.sessions.iter().flatten() {
            if s.state.sweeps_data_edges() {
                sweep_consumers += 1;
                sweeps
                    .entry(s.state.radius)
                    .or_insert_with(|| (BitSet::new(n), BitSet::new(n)));
            }
        }
        for (radius, (pre, _)) in sweeps.iter_mut() {
            mark_edge_ball_centers(self.substrate.published(), &deleted, *radius, pre);
        }

        let compactions_before = self.substrate.published().compactions();
        self.substrate
            .stage(delta)
            .expect("validated against the published version");
        self.substrate.publish();
        let compacted = self.substrate.published().compactions() > compactions_before;

        for (radius, (_, post)) in sweeps.iter_mut() {
            mark_edge_ball_centers(self.substrate.published(), &inserted, *radius, post);
        }

        // One flat materialisation shared by every full-graph-substrate query this
        // apply (the counted path needs none at all).
        let mut flat: Option<Graph> = None;
        let mut flat_builds = 0usize;
        let mut flat_reuses = 0usize;
        let empty = BitSet::new(n);
        for slot in self.sessions.iter_mut() {
            let Some(sess) = slot else { continue };
            let (pre, post) = match sweeps.get(&sess.state.radius) {
                Some((pre, post)) if sess.state.sweeps_data_edges() => (pre, post),
                _ => (&empty, &empty),
            };
            let data = self.substrate.published();
            let mut effect = sess.state.advance_applied(data, delta, pre, post);
            if effect.gm_reextracted {
                sess.cache.invalidate_locality();
            }
            for &center in &sess.output.lost_centers {
                effect.dirty.insert(center.index());
            }
            let mut out = match sess.state.prepared() {
                Some(p) if p.gm.is_some() || !p.relation.is_total() => {
                    distributed_with_prepared_counted(
                        &sess.pattern,
                        n,
                        &sess.config,
                        p,
                        Some(&effect.dirty),
                        &mut sess.cache,
                        faults,
                    )?
                }
                p => {
                    let flat = match &flat {
                        Some(g) => {
                            flat_reuses += 1;
                            g
                        }
                        None => {
                            flat_builds += 1;
                            flat.insert(data.to_graph())
                        }
                    };
                    distributed_with_prepared_cached(
                        &sess.pattern,
                        flat,
                        &sess.config,
                        p,
                        Some(&effect.dirty),
                        &mut sess.cache,
                        faults,
                    )?
                }
            };
            let fresh = std::mem::replace(
                &mut out.subgraphs,
                std::mem::take(&mut sess.output.subgraphs),
            );
            splice_rows(&mut out.subgraphs, &effect.dirty, fresh);
            out.traffic.result_subgraphs = out.subgraphs.len();
            sess.output = out;
        }

        Ok(DistServiceUpdate {
            epoch: self.substrate.epoch(),
            compacted,
            sharing: SharingStats {
                sessions: self.len(),
                edge_sweep_radii: sweeps.len(),
                edge_sweep_consumers: sweep_consumers,
                substrate_builds: flat_builds,
                substrate_reuses: flat_reuses,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::RecoveryPolicy;
    use crate::incremental::IncrementalDistributed;
    use crate::partition::PartitionStrategy;
    use ssim_datasets::patterns::extract_pattern;
    use ssim_datasets::synthetic::{synthetic, SyntheticConfig};

    fn base_config() -> DistributedConfig {
        DistributedConfig {
            sites: 3,
            strategy: PartitionStrategy::Range,
            minimize_query: false,
            ..DistributedConfig::default()
        }
    }

    fn two_deltas(data: &Graph) -> [GraphDelta; 2] {
        let (s, t) = data.edges().next().expect("generator emits edges");
        let mut d1 = GraphDelta::new();
        d1.delete_edge(s, t);
        let fresh = data
            .nodes()
            .find(|&v| !data.has_edge(v, NodeId(0)) && v != NodeId(0))
            .expect("some non-edge exists");
        let mut d2 = GraphDelta::new();
        d2.insert_edge(fresh, NodeId(0));
        [d1, d2]
    }

    #[test]
    fn distributed_service_tracks_independent_sessions() {
        let data = synthetic(&SyntheticConfig {
            nodes: 160,
            alpha: 1.15,
            labels: 8,
            seed: 11,
        });
        let patterns: Vec<Pattern> = [7u64, 5]
            .iter()
            .map(|&seed| extract_pattern(&data, 3, seed).expect("pattern extraction succeeds"))
            .collect();
        let config = base_config();
        let mut service = DistributedQueryService::new(data.clone());
        let ids: Vec<QueryId> = patterns
            .iter()
            .map(|p| service.register(p, config).expect("valid config"))
            .collect();
        let mut oracles: Vec<IncrementalDistributed> = patterns
            .iter()
            .map(|p| IncrementalDistributed::new(p, data.clone(), config).expect("valid config"))
            .collect();
        for (id, oracle) in ids.iter().zip(&oracles) {
            assert_eq!(
                service.output(*id).unwrap().subgraphs,
                oracle.output().subgraphs,
                "initial"
            );
        }
        for (i, delta) in two_deltas(&data).iter().enumerate() {
            service.apply(delta).unwrap();
            for (id, oracle) in ids.iter().zip(oracles.iter_mut()) {
                oracle.apply(delta).unwrap();
                assert_eq!(
                    service.output(*id).unwrap().subgraphs,
                    oracle.output().subgraphs,
                    "step {i}"
                );
                assert_eq!(
                    service.output(*id).unwrap().traffic.dirty_balls,
                    oracle.output().traffic.dirty_balls,
                    "step {i} dirty split"
                );
            }
        }
    }

    #[test]
    fn service_batch_matches_sequential_applies() {
        let data = synthetic(&SyntheticConfig {
            nodes: 140,
            alpha: 1.15,
            labels: 8,
            seed: 13,
        });
        let pattern = extract_pattern(&data, 3, 5).expect("pattern extraction succeeds");
        let config = base_config();
        let deltas = two_deltas(&data);
        let mut batched = DistributedQueryService::new(data.clone());
        let id_b = batched.register(&pattern, config).unwrap();
        let mut sequential = DistributedQueryService::new(data.clone());
        let id_s = sequential.register(&pattern, config).unwrap();
        batched.apply_batch(&deltas).unwrap();
        for d in &deltas {
            sequential.apply(d).unwrap();
        }
        assert_eq!(
            batched.output(id_b).unwrap().subgraphs,
            sequential.output(id_s).unwrap().subgraphs
        );
        assert_eq!(batched.data(), sequential.data());
        // Empty batch is a no-op.
        let before = batched.output(id_b).unwrap().subgraphs.clone();
        let update = batched.apply_batch(&[]).unwrap();
        assert_eq!(update.sharing.sessions, 1);
        assert_eq!(batched.output(id_b).unwrap().subgraphs, before);
    }

    #[test]
    fn faulty_apply_degrades_then_heals_per_query() {
        let data = synthetic(&SyntheticConfig {
            nodes: 140,
            alpha: 1.15,
            labels: 8,
            seed: 13,
        });
        let pattern = extract_pattern(&data, 3, 5).expect("pattern extraction succeeds");
        let policy = RecoveryPolicy::default();
        let config = DistributedConfig {
            recovery: Some(policy),
            ..base_config()
        };
        let deltas = two_deltas(&data);

        let mut oracle = DistributedQueryService::new(data.clone());
        let id_o = oracle.register(&pattern, config).unwrap();
        oracle.apply(&deltas[0]).unwrap();
        oracle.apply(&deltas[1]).unwrap();

        let mut plan = FaultPlan::none();
        for site in 0..config.sites {
            for round in 0..=policy.chunk_retries {
                plan.panic_chunk(site, 0, round);
            }
        }
        let mut service = DistributedQueryService::new(data.clone());
        let id = service.register(&pattern, config).unwrap();
        service.apply_with_faults(&deltas[0], &plan).unwrap();
        assert!(!service.output(id).unwrap().lost_centers.is_empty());
        service.apply(&deltas[1]).unwrap();
        assert!(service.output(id).unwrap().lost_centers.is_empty());
        assert_eq!(
            service.output(id).unwrap().subgraphs,
            oracle.output(id_o).unwrap().subgraphs,
            "post-healing"
        );
    }

    #[test]
    fn fault_plan_without_recovery_is_rejected_before_any_state_moves() {
        let data = synthetic(&SyntheticConfig {
            nodes: 100,
            alpha: 1.15,
            labels: 8,
            seed: 7,
        });
        let pattern = extract_pattern(&data, 3, 5).expect("pattern extraction succeeds");
        let mut service = DistributedQueryService::new(data.clone());
        let id = service.register(&pattern, base_config()).unwrap();
        let before = service.output(id).unwrap().subgraphs.clone();
        let epoch = service.epoch();
        let mut plan = FaultPlan::none();
        plan.panic_chunk(0, 0, 0);
        let [d1, _] = two_deltas(&data);
        assert!(matches!(
            service.apply_with_faults(&d1, &plan),
            Err(DistError::FaultPlanNeedsRecovery)
        ));
        assert_eq!(service.epoch(), epoch, "substrate untouched");
        assert_eq!(service.output(id).unwrap().subgraphs, before);
    }
}

//! Deterministic fault injection and recovery policy for the distributed runtime.
//!
//! A [`FaultPlan`] scripts failures at precise points of a distributed run — site
//! crashes, per-chunk worker panics, dropped result messages and slow-site delays —
//! keyed by `(site, chunk index, supervision round)`. Because the chunk plan depends
//! only on the site center counts (never on worker count or steal timing) and the
//! supervision loop advances in rounds, every scripted scenario is **replayable**: the
//! same plan against the same input produces the same failures, the same recovery trace
//! and the same output, bit for bit.
//!
//! Time is virtual. Delays and backoff are accounted in abstract *ticks* against
//! [`RecoveryPolicy::chunk_timeout_ticks`]; nothing sleeps, so chaos suites run at full
//! speed and stay deterministic on loaded CI runners.
//!
//! The recovery contract mirrors the engine's repetition budget/bail contract (PR 8):
//! fail locally, count what was skipped, keep the global answer well-defined. A chunk
//! that fails past [`RecoveryPolicy::chunk_retries`] is *lost*, its centers are reported
//! in [`crate::runtime::DistributedOutput::lost_centers`], and the coverage arithmetic
//! `covered_balls + lost_balls == |V|` stays exact — the surviving subgraphs are always
//! a subset of the fault-free result (per-chunk `reset_chain` makes each chunk's rows a
//! function of chunk content alone, so replayed or reassigned chunks are bit-safe).

use std::collections::BTreeMap;

/// What a scripted chunk fault does when the chunk executes in its round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The worker evaluating the chunk panics (caught per chunk by the supervisor).
    Panic,
    /// The chunk evaluates, but its result message is lost on the way back to the
    /// coordinator — indistinguishable from a failure, so it is retried.
    DropResult,
    /// The chunk's result arrives after the given number of virtual ticks. Delays at or
    /// past [`RecoveryPolicy::chunk_timeout_ticks`] are treated as a timeout failure;
    /// shorter ones complete and are accounted in
    /// [`RecoveryStats::delay_ticks`].
    Delay(u64),
}

/// A deterministic, replayable script of faults for one distributed run.
///
/// Chunk faults are keyed by `(site, chunk, round)` where `chunk` is the site-local
/// chunk ordinal (position in the site's [`ssim_core::parallel::chunk_plan`]) and
/// `round` is the supervision round (0 is the initial pass; a chunk that failed in
/// round `r` is retried in round `r + 1`). A fault fires when *that chunk* executes in
/// *that round*, whichever worker runs it — faults are properties of the simulated
/// site/network, not of the stealing schedule. Keys that never execute (a chunk index
/// past the site's plan, a round the chunk never reaches) are silent no-ops, which lets
/// seeded generators script plans without knowing the exact chunk counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Site id → round at the start of which the site is dead. A dead site's workers
    /// stop executing and its unfinished chunks are reassigned to surviving sites.
    crashes: BTreeMap<usize, usize>,
    /// `(site, chunk, round)` → scripted action.
    chunk_faults: BTreeMap<(usize, usize, usize), FaultAction>,
}

impl FaultPlan {
    /// An empty plan: no faults, the run behaves exactly like the fault-free runtime.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan scripts nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.chunk_faults.is_empty()
    }

    /// Scripts site `site` to crash at the start of round `round`: its workers stop and
    /// its unfinished chunks are reassigned to surviving sites. Results the site already
    /// returned in earlier rounds stay valid (they were shipped to the coordinator).
    pub fn crash_site(&mut self, site: usize, round: usize) -> &mut Self {
        let entry = self.crashes.entry(site).or_insert(round);
        *entry = (*entry).min(round);
        self
    }

    /// Scripts a worker panic while evaluating chunk `chunk` of `site` in `round`.
    pub fn panic_chunk(&mut self, site: usize, chunk: usize, round: usize) -> &mut Self {
        self.chunk_faults
            .insert((site, chunk, round), FaultAction::Panic);
        self
    }

    /// Scripts the loss of the chunk's result message in `round`.
    pub fn drop_result(&mut self, site: usize, chunk: usize, round: usize) -> &mut Self {
        self.chunk_faults
            .insert((site, chunk, round), FaultAction::DropResult);
        self
    }

    /// Scripts a slow site: the chunk's result arrives `ticks` virtual ticks late.
    pub fn delay_chunk(
        &mut self,
        site: usize,
        chunk: usize,
        round: usize,
        ticks: u64,
    ) -> &mut Self {
        self.chunk_faults
            .insert((site, chunk, round), FaultAction::Delay(ticks));
        self
    }

    /// The round at which `site` crashes, if scripted.
    pub fn crash_round(&self, site: usize) -> Option<usize> {
        self.crashes.get(&site).copied()
    }

    /// Sites scripted to crash, with their crash rounds, in site order.
    pub fn crashes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.crashes.iter().map(|(&s, &r)| (s, r))
    }

    /// The scripted action for `(site, chunk, round)`, if any.
    pub fn action_at(&self, site: usize, chunk: usize, round: usize) -> Option<FaultAction> {
        self.chunk_faults.get(&(site, chunk, round)).copied()
    }

    /// Number of scripted chunk faults (panics, drops, delays).
    pub fn chunk_fault_count(&self) -> usize {
        self.chunk_faults.len()
    }

    /// A seeded random plan that is **recoverable** under `policy` with `sites` sites:
    /// at most `sites - 1` crashes, and per chunk at most `policy.chunk_retries`
    /// consecutive failures starting at round 0 (so the chunk's final retry always
    /// succeeds), plus benign sub-timeout delays. Same seed, same plan.
    pub fn seeded_recoverable(seed: u64, sites: usize, policy: &RecoveryPolicy) -> Self {
        let mut rng = SplitMix::new(seed);
        let mut plan = FaultPlan::none();
        if sites > 1 {
            // Crashes never lose work on their own (chunks are reassigned), but keep at
            // least one site alive so reassignment has a destination.
            let crash_count = (rng.next() as usize) % sites; // 0..=sites-1
            let mut crashed = Vec::new();
            while crashed.len() < crash_count {
                let site = (rng.next() as usize) % sites;
                if !crashed.contains(&site) {
                    crashed.push(site);
                    plan.crash_site(site, (rng.next() as usize) % 3);
                }
            }
        }
        let targets = (rng.next() as usize) % 4;
        let mut used: Vec<(usize, usize)> = Vec::new();
        for _ in 0..targets {
            let site = (rng.next() as usize) % sites.max(1);
            let chunk = (rng.next() as usize) % 4;
            if used.contains(&(site, chunk)) {
                continue;
            }
            used.push((site, chunk));
            // Failures must hit the chunk's actual attempt schedule: a chunk attempts
            // rounds 0, 1, 2, … while it keeps failing, so `f <= chunk_retries`
            // consecutive failures from round 0 leave the final attempt fault-free.
            let failures = (rng.next() as usize) % (policy.chunk_retries + 1);
            for round in 0..failures {
                match rng.next() % 3 {
                    0 => plan.panic_chunk(site, chunk, round),
                    1 => plan.drop_result(site, chunk, round),
                    // A delay at the timeout counts as a failure.
                    _ => plan.delay_chunk(
                        site,
                        chunk,
                        round,
                        policy.chunk_timeout_ticks.saturating_add(rng.next() % 16),
                    ),
                };
            }
            if rng.next().is_multiple_of(2) && policy.chunk_timeout_ticks > 1 {
                // Benign slow-site delay on the succeeding attempt.
                plan.delay_chunk(
                    site,
                    chunk,
                    failures,
                    1 + rng.next() % (policy.chunk_timeout_ticks - 1).min(64),
                );
            }
        }
        plan
    }

    /// A seeded random plan that is **unrecoverable** under `policy`: either every site
    /// crashes at round 0 (no survivor to reassign to), or the first chunk of every
    /// site panics on every attempt within the retry budget (so any site that owns at
    /// least one ball center loses its first chunk). Same seed, same plan.
    pub fn seeded_unrecoverable(seed: u64, sites: usize, policy: &RecoveryPolicy) -> Self {
        let mut rng = SplitMix::new(seed);
        let mut plan = FaultPlan::none();
        if rng.next().is_multiple_of(2) {
            for site in 0..sites {
                plan.crash_site(site, 0);
            }
        } else {
            for site in 0..sites {
                for round in 0..=policy.chunk_retries {
                    plan.panic_chunk(site, 0, round);
                }
            }
        }
        plan
    }
}

/// How the coordinator's supervision loop reacts to chunk failures and site loss.
///
/// Present on [`crate::runtime::DistributedConfig::recovery`]: `None` disables
/// supervision entirely (the zero-overhead fast path, where a worker panic propagates
/// as before), `Some(policy)` routes the fan-out through the supervision loop — chunk
/// panics are caught and retried, dead sites' chunks are reassigned, and chunks that
/// exhaust the budget degrade to exact coverage loss (or fail the run, per
/// [`RecoveryPolicy::allow_degraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per chunk after its first attempt. A chunk failing `chunk_retries + 1`
    /// times is lost.
    pub chunk_retries: usize,
    /// Base backoff in virtual ticks before a retry; attempt `k` backs off
    /// `backoff_ticks << (k - 1)` (exponential), accounted in
    /// [`RecoveryStats::backoff_ticks`].
    pub backoff_ticks: u64,
    /// Scripted delays at or past this many ticks count as a chunk timeout (a failure);
    /// shorter delays complete and are accounted as absorbed slow-site time.
    pub chunk_timeout_ticks: u64,
    /// When chunks are lost past the retry budget: `true` emits a degraded
    /// [`crate::runtime::DistributedOutput`] with exact coverage accounting,
    /// `false` fails the run with [`crate::DistError::CoverageLost`].
    pub allow_degraded: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            chunk_retries: 2,
            backoff_ticks: 1,
            chunk_timeout_ticks: 1_000,
            allow_degraded: true,
        }
    }
}

impl RecoveryPolicy {
    /// Validates the policy: it must be able to either retry or degrade, and the
    /// timeout must admit at least instant chunks.
    pub fn validate(&self) -> Result<(), crate::DistError> {
        if self.chunk_retries == 0 && !self.allow_degraded {
            return Err(crate::DistError::UselessRecoveryPolicy);
        }
        if self.chunk_timeout_ticks == 0 {
            return Err(crate::DistError::ZeroChunkTimeout);
        }
        Ok(())
    }
}

/// Recovery-event accounting for one supervised run, carried on
/// [`crate::runtime::TrafficStats::recovery`].
///
/// Every counter here is a deterministic function of the input, the fault plan and the
/// policy — rounds are barriers and faults are scripted, so none of these depend on
/// steal timing (`chunks_stolen` remains the one schedule-dependent counter). A
/// fault-free supervised run leaves all of them zero, which is how the equivalence
/// suites compare supervised against fast-path traffic directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Sites that crashed during the run.
    pub site_crashes: usize,
    /// Chunk evaluations that panicked (scripted or genuine) and were caught by the
    /// supervisor instead of aborting the run.
    pub panics_contained: usize,
    /// Chunk results lost in transit (scripted message drops).
    pub results_dropped: usize,
    /// Chunk evaluations whose scripted delay hit the policy timeout.
    pub chunk_timeouts: usize,
    /// Retry executions scheduled (one per failure within the budget).
    pub chunk_retries: usize,
    /// Chunks of dead sites rerouted to surviving sites.
    pub chunks_reassigned: usize,
    /// Supervision rounds beyond the first (0 on a fault-free run).
    pub retry_rounds: usize,
    /// Virtual backoff ticks accumulated before retries (exponential per attempt).
    pub backoff_ticks: u64,
    /// Virtual slow-site delay ticks absorbed below the timeout.
    pub delay_ticks: u64,
    /// Chunks lost past the retry budget (their centers are the lost balls).
    pub chunks_lost: usize,
}

/// Minimal splitmix64 stream for the seeded plan generators — deterministic, no
/// external dependency, good enough to scatter fault points.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistError;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let policy = RecoveryPolicy::default();
        for seed in 0..50u64 {
            assert_eq!(
                FaultPlan::seeded_recoverable(seed, 4, &policy),
                FaultPlan::seeded_recoverable(seed, 4, &policy)
            );
            assert_eq!(
                FaultPlan::seeded_unrecoverable(seed, 4, &policy),
                FaultPlan::seeded_unrecoverable(seed, 4, &policy)
            );
        }
    }

    #[test]
    fn recoverable_plans_respect_the_budget() {
        let policy = RecoveryPolicy {
            chunk_retries: 2,
            ..RecoveryPolicy::default()
        };
        for seed in 0..200u64 {
            for sites in [1usize, 2, 4, 7] {
                let plan = FaultPlan::seeded_recoverable(seed, sites, &policy);
                // Never all sites crashed.
                assert!(plan.crashes().count() < sites.max(1), "seed {seed}");
                // Per chunk: failures are consecutive from round 0 and within budget.
                let mut failures: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
                for (&(site, chunk, round), &action) in &plan.chunk_faults {
                    let failing = match action {
                        FaultAction::Panic | FaultAction::DropResult => true,
                        FaultAction::Delay(t) => t >= policy.chunk_timeout_ticks,
                    };
                    if failing {
                        failures.entry((site, chunk)).or_default().push(round);
                    }
                }
                for ((site, chunk), rounds) in failures {
                    assert!(
                        rounds.len() <= policy.chunk_retries,
                        "seed {seed}: chunk ({site},{chunk}) scripted past the budget"
                    );
                    for (i, &r) in rounds.iter().enumerate() {
                        assert_eq!(r, i, "seed {seed}: failures not consecutive from 0");
                    }
                }
            }
        }
    }

    #[test]
    fn unrecoverable_plans_guarantee_loss_pressure() {
        let policy = RecoveryPolicy::default();
        for seed in 0..50u64 {
            let plan = FaultPlan::seeded_unrecoverable(seed, 3, &policy);
            let all_crashed =
                plan.crashes().count() == 3 && plan.crashes().all(|(_, round)| round == 0);
            let perma_panic = (0..3).all(|site| {
                (0..=policy.chunk_retries)
                    .all(|r| plan.action_at(site, 0, r) == Some(FaultAction::Panic))
            });
            assert!(all_crashed || perma_panic, "seed {seed}");
        }
    }

    #[test]
    fn crash_site_keeps_the_earliest_round() {
        let mut plan = FaultPlan::none();
        plan.crash_site(2, 5).crash_site(2, 1).crash_site(2, 3);
        assert_eq!(plan.crash_round(2), Some(1));
        assert_eq!(plan.crash_round(0), None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn policy_validation_rejects_degenerate_policies() {
        let useless = RecoveryPolicy {
            chunk_retries: 0,
            allow_degraded: false,
            ..RecoveryPolicy::default()
        };
        assert_eq!(useless.validate(), Err(DistError::UselessRecoveryPolicy));
        let zero_timeout = RecoveryPolicy {
            chunk_timeout_ticks: 0,
            ..RecoveryPolicy::default()
        };
        assert_eq!(zero_timeout.validate(), Err(DistError::ZeroChunkTimeout));
        assert_eq!(RecoveryPolicy::default().validate(), Ok(()));
        // Zero retries WITH degradation is a legitimate fail-straight-to-lost policy.
        let degrade_only = RecoveryPolicy {
            chunk_retries: 0,
            allow_degraded: true,
            ..RecoveryPolicy::default()
        };
        assert_eq!(degrade_only.validate(), Ok(()));
    }
}

//! The simulated coordinator/site runtime.
//!
//! Each site's balls (the balls centred at the site's own nodes) are evaluated in
//! locality-contiguous chunks and reported as partial results `Θi` plus traffic counters
//! back to the coordinator; the coordinator assembles the union. Every ball is evaluated
//! exactly once (charged to the site owning its center), so the union equals the
//! centralized result — the property the tests verify.
//!
//! The fan-out reuses the matching engine's work-stealing chunk scheduler
//! ([`ssim_core::parallel::StealScheduler`]): each site's center list is cut into
//! chunks ([`ssim_core::parallel::chunk_plan`]), the site-ordered chunk list is dealt to
//! one worker per site, and a worker whose sites ran dry steals whole chunks from loaded
//! sites — a slow site overlaps with fast ones instead of barriering the run on the
//! largest fragment. Each site matches its balls with the same ball-local compact engine
//! ([`ssim_core::strong::match_compact_ball`]) the centralized `Match` runs, so engine
//! improvements land on both runtimes at once. A worker slides one [`BallForest`] within
//! each chunk and resets it at chunk boundaries, so per-ball behaviour (and every
//! counter except `chunks_stolen`) is independent of how the steals fall — a ball is
//! charged to exactly one site, either as built or as reused, never both. Chunks are
//! never re-split here: site chunk lists are already fragment-sized, and the per-site
//! attribution of `balls_per_site` is simplest when chunk boundaries are fixed.
//!
//! # Fault tolerance
//!
//! With [`DistributedConfig::recovery`] set, the fan-out runs under a coordinator
//! **supervision loop** instead of the zero-overhead fast path. The loop advances in
//! rounds: every round executes the still-pending chunks (each attempt wrapped in its
//! own `catch_unwind`), then processes the outcomes deterministically in chunk-id order.
//! A failed attempt — a contained panic, a dropped result message, a scripted delay at
//! or past the policy timeout — is retried with exponential virtual-tick backoff until
//! [`RecoveryPolicy::chunk_retries`] is exhausted; a site scripted to crash has its
//! unfinished chunks reassigned to surviving sites before the round executes (crashes
//! never consume retries). Because per-chunk `reset_chain` makes every chunk's rows and
//! counters a pure function of chunk content, replayed and reassigned chunks are
//! bit-safe: a recoverable run's output is bit-identical to the fault-free run, with the
//! recovery trace confined to [`TrafficStats::recovery`]. Chunks lost past the budget
//! degrade the output instead of failing it (under
//! [`RecoveryPolicy::allow_degraded`]): their centers are reported in
//! [`DistributedOutput::lost_centers`] and the coverage arithmetic
//! `covered_balls + lost_balls == |V|` stays exact — the distributed mirror of the
//! repetition budget/bail contract.

use crate::error::DistError;
use crate::fault::{FaultAction, FaultPlan, RecoveryPolicy, RecoveryStats};
use crate::partition::{GraphPartition, PartitionStrategy};
use ssim_core::ball::{locality_center_order, BallForest, BallSubstrate};
use ssim_core::dual::dual_simulation_with;
use ssim_core::incremental::{PreparedGlobal, UpdatePlan};
use ssim_core::match_graph::PerfectSubgraph;
use ssim_core::minimize::minimize_pattern;
use ssim_core::parallel::{
    chunk_plan, effective_workers, panic_message, par_workers, StealScheduler,
};
use ssim_core::relation::MatchRelation;
use ssim_core::repetition::{RepetitionMode, RepetitionSemantics};
use ssim_core::simulation::{RefineSeed, RefineStrategy};
use ssim_core::strong::{
    match_compact_ball_filtered_with, match_compact_ball_with, translate_to_outer,
};
use ssim_core::warm::WarmMatcher;
use ssim_graph::{BallScratch, BitSet, ExtractedSubgraph, Graph, NodeId, Pattern};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Configuration of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct DistributedConfig {
    /// Number of sites (fragments).
    pub sites: usize,
    /// How the data graph is partitioned across sites.
    pub strategy: PartitionStrategy,
    /// Minimise the query at the coordinator before broadcasting it.
    pub minimize_query: bool,
    /// How each site's per-ball refinement is seeded: warm-started from the site's
    /// previous ball (the default) or from scratch (the equivalence oracle), mirroring
    /// the centralized engine's [`RefineSeed`] axis.
    pub refine_seed: RefineSeed,
    /// Compute the global dual-simulation relation once at the coordinator, restrict the
    /// sites to matched ball centers and seed every per-ball refinement from the
    /// projected relation (`dualFilter`, Fig. 5) — the distributed mirror of
    /// `MatchConfig::dual_filter`.
    pub dual_filter: bool,
    /// Which graph the sites' ball pipelines traverse under [`Self::dual_filter`]: the
    /// coordinator-extracted match graph `Gm` (each site walks its own slice of `Gm`'s
    /// locality order) or the full data graph. Ignored without `dual_filter`.
    pub ball_substrate: BallSubstrate,
    /// How [`crate::incremental::IncrementalDistributed`] reacts to graph deltas:
    /// coordinator-side state maintenance with per-site dirty-ball routing (the
    /// default) or a full recompute (the equivalence oracle). One-shot
    /// [`distributed_strong_simulation`] calls ignore the axis.
    pub update_plan: UpdatePlan,
    /// How equal-labelled pattern nodes may be realised by data nodes — the distributed
    /// mirror of `MatchConfig::repetition`. Sites run the per-ball repetition closure
    /// locally before emitting, so the union equals the centralized result under every
    /// semantics.
    pub repetition: RepetitionSemantics,
    /// Which implementation enforces a non-`Free` repetition semantics at the sites
    /// (the integrated closure or the naive per-pair oracle).
    pub repetition_mode: RepetitionMode,
    /// `None` (the default) runs the zero-overhead fast path, where a worker panic
    /// propagates and aborts the run as before. `Some(policy)` routes the fan-out
    /// through the coordinator supervision loop: chunk failures are contained and
    /// retried, crashed sites' chunks are reassigned, and chunks lost past the budget
    /// degrade the output with exact coverage accounting instead of panicking.
    pub recovery: Option<RecoveryPolicy>,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            sites: 4,
            strategy: PartitionStrategy::Range,
            minimize_query: true,
            refine_seed: RefineSeed::WarmStart,
            dual_filter: false,
            ball_substrate: BallSubstrate::MatchGraph,
            update_plan: UpdatePlan::Incremental,
            repetition: RepetitionSemantics::Free,
            repetition_mode: RepetitionMode::Integrated,
            recovery: None,
        }
    }
}

impl DistributedConfig {
    /// Validates the configuration against a concrete data graph size. Every entry
    /// point runs this up front, so misconfigurations surface as typed errors before
    /// any site work starts (the runtime used to clamp or panic instead).
    pub fn validate(&self, nodes: usize) -> Result<(), DistError> {
        if self.sites == 0 {
            return Err(DistError::NoSites);
        }
        if self.sites > nodes {
            return Err(DistError::MoreSitesThanNodes {
                sites: self.sites,
                nodes,
            });
        }
        if let Some(policy) = &self.recovery {
            policy.validate()?;
        }
        Ok(())
    }
}

/// Network-traffic accounting for one distributed run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Candidate ball centers considered by the coordinator: every data node, on both
    /// ball substrates (`considered_balls == skipped_balls + Σ balls_per_site`).
    pub considered_balls: usize,
    /// Centers excluded before any site saw them — the global dual filter's unmatched
    /// nodes (equivalently: nodes outside `Gm` on the match-graph substrate).
    pub skipped_balls: usize,
    /// Balls whose center sits next to a fragment boundary (candidates for shipping).
    pub border_balls: usize,
    /// Balls that actually contained at least one foreign node and thus required shipping.
    pub shipped_balls: usize,
    /// Total number of foreign nodes shipped across all balls.
    pub shipped_nodes: usize,
    /// Total number of ball edges incident to a foreign node (shipped edges).
    pub shipped_edges: usize,
    /// Perfect subgraphs shipped back to the coordinator.
    pub result_subgraphs: usize,
    /// Balls constructed by a fresh BFS, summed over sites. Every ball is evaluated at
    /// exactly one site (the owner of its center), so `built_balls + reused_balls` equals
    /// the total ball count — a reused ball is never also counted as built, and no ball
    /// is counted at two sites.
    pub built_balls: usize,
    /// Balls derived incrementally from the owning site's previous ball.
    pub reused_balls: usize,
    /// Balls whose refinement was warm-started from the owning site's previous ball
    /// ([`RefineSeed::WarmStart`] only).
    pub warm_started_balls: usize,
    /// Pairs fed to per-ball refinement across all sites: the delta suspects on
    /// warm-started balls, the full start relation otherwise (seed-dependent
    /// instrumentation, like the centralized `MatchStats::seeded_pairs`).
    pub warm_seeded_pairs: usize,
    /// Centers this run had no cached result for: every center on a one-shot run, only
    /// the delta-invalidated ones on an incremental update (of which only the matched
    /// ones are actually routed to sites). `dirty_balls + clean_balls == |V|` always.
    pub dirty_balls: usize,
    /// Centers whose cached (or trivially absent) result was reused untouched.
    pub clean_balls: usize,
    /// Locality-contiguous chunks of site center lists whose results reached the
    /// coordinator. The per-site chunk plans depend only on the site center counts, so
    /// this is identical at every worker count; on a supervised run each chunk counts
    /// once however many attempts it took (failed attempts are accounted in
    /// [`TrafficStats::recovery`]), and lost chunks do not count.
    pub chunks_processed: usize,
    /// Chunks executed by a worker other than the one they were dealt to — cross-site
    /// load balancing in action. The one scheduling-dependent counter; excluded from
    /// the consistency suites' comparisons.
    pub chunks_stolen: usize,
    /// Ball centers whose evaluation completed or was skipped/clean — everything except
    /// the lost ones. `covered_balls + lost_balls == |V|` always (the coverage
    /// contract); a fully successful run covers every node.
    pub covered_balls: usize,
    /// Ball centers whose evaluation was lost past the retry budget (the members of
    /// [`DistributedOutput::lost_centers`]). Zero on the fast path.
    pub lost_balls: usize,
    /// Recovery-event counters from the supervision loop; all zero on the fast path and
    /// on a fault-free supervised run. Deterministic given the input and the fault plan
    /// (rounds are barriers), unlike `chunks_stolen`.
    pub recovery: RecoveryStats,
    /// Number of balls evaluated by each site. Reassigned chunks stay charged to the
    /// site owning their centers, so a recoverable run's attribution matches the
    /// fault-free run.
    pub balls_per_site: Vec<usize>,
}

/// Result of a distributed strong-simulation run.
#[derive(Debug, Clone)]
pub struct DistributedOutput {
    /// The union of the sites' partial results, ordered by ball center.
    pub subgraphs: Vec<PerfectSubgraph>,
    /// Aggregated traffic counters.
    pub traffic: TrafficStats,
    /// The partition that was used.
    pub partition: GraphPartition,
    /// Ball centers (in the caller's data-graph ids, ascending) whose evaluation was
    /// lost past the recovery budget — empty on any fully successful run. Each lost
    /// center's ball may or may not have matched; the surviving
    /// [`DistributedOutput::subgraphs`] are exactly the fault-free result minus rows
    /// centred at these nodes.
    pub lost_centers: Vec<NodeId>,
}

impl DistributedOutput {
    /// Union of matched data nodes, mirroring [`ssim_core::strong::MatchOutput::matched_nodes`].
    pub fn matched_nodes(&self) -> std::collections::BTreeSet<ssim_graph::NodeId> {
        self.subgraphs
            .iter()
            .flat_map(|s| s.nodes.iter().copied())
            .collect()
    }
}

/// Delta-invariant coordinator state cached across incremental applies.
///
/// * The **partition** depends only on `|V|`, the site count and the strategy — both
///   strategies assign ownership by node id, so edge deltas can never move a node to
///   another site. One partition serves the whole delta stream (cloned into each
///   [`DistributedOutput`], a memcpy instead of a rebuild).
/// * The **locality order** is one undirected BFS order over *all* substrate nodes;
///   each apply filters it down to its dirty centers (bit-identical to ordering the
///   filtered set directly — the order is produced by filtering a whole-graph BFS).
///   The order is a performance hint, not a correctness input: any permutation of the
///   centers yields the same rows, so it is reused until the substrate itself is
///   replaced (a `Gm` re-extraction) rather than per delta.
#[derive(Default)]
pub struct CoordinatorCache {
    partition: Option<GraphPartition>,
    locality: Option<Vec<NodeId>>,
}

impl CoordinatorCache {
    /// An empty cache; fills lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached locality order (the substrate it ordered was replaced).
    pub fn invalidate_locality(&mut self) {
        self.locality = None;
    }

    fn partition(&mut self, n: usize, config: &DistributedConfig) -> GraphPartition {
        let stale = self.partition.as_ref().is_none_or(|p| {
            p.sites() != config.sites || p.fragment_sizes().iter().sum::<usize>() != n
        });
        if stale {
            self.partition = Some(GraphPartition::from_node_count(
                n,
                config.sites,
                config.strategy,
            ));
        }
        self.partition.clone().expect("filled above")
    }

    fn locality(&mut self, match_data: &Graph, centers: &[NodeId]) -> Vec<NodeId> {
        let stale = self
            .locality
            .as_ref()
            .is_none_or(|order| order.len() != match_data.node_count());
        if stale {
            let all: Vec<NodeId> = match_data.nodes().collect();
            self.locality = Some(locality_center_order(match_data, &all));
        }
        let order = self.locality.as_ref().expect("filled above");
        let mut wanted = BitSet::new(match_data.node_count());
        for &c in centers {
            wanted.insert(c.index());
        }
        order
            .iter()
            .copied()
            .filter(|c| wanted.contains(c.index()))
            .collect()
    }
}

/// The coordinator's data argument: the flat graph, or — when the whole run stays
/// inside the prepared `Gm` — just its node count (the overlay-serving path).
enum DistData<'a> {
    Flat(&'a Graph),
    CountOnly(usize),
}

impl DistData<'_> {
    #[inline]
    fn node_count(&self) -> usize {
        match self {
            DistData::Flat(g) => g.node_count(),
            DistData::CountOnly(n) => *n,
        }
    }

    #[inline]
    fn flat(&self) -> Result<&Graph, DistError> {
        match self {
            DistData::Flat(g) => Ok(g),
            DistData::CountOnly(_) => Err(DistError::FlatGraphRequired),
        }
    }
}

/// One unit of schedulable site work: a contiguous slice of `site`'s locality-ordered
/// center list. `index` is the chunk's ordinal within the site's plan — together
/// `(site, index)` is the chunk's stable identity, the coordinate fault plans key on.
/// Chunk boundaries depend only on the site center counts, never on the worker count or
/// steal timing.
struct SiteChunk {
    site: usize,
    index: usize,
    range: std::ops::Range<usize>,
}

/// Partial result produced by one fan-out worker, possibly spanning chunks of several
/// sites (its own plus stolen ones); per-site attribution survives in `balls_per_site`.
/// The supervised path produces one report per *successful chunk attempt* instead — the
/// merge only ever sums reports, so both granularities feed it unchanged.
struct WorkerReport {
    subgraphs: Vec<PerfectSubgraph>,
    border_balls: usize,
    shipped_balls: usize,
    shipped_nodes: usize,
    shipped_edges: usize,
    built_balls: usize,
    reused_balls: usize,
    warm_started_balls: usize,
    warm_seeded_pairs: usize,
    chunks_processed: usize,
    chunks_stolen: usize,
    balls_per_site: Vec<usize>,
}

impl WorkerReport {
    fn new(sites: usize) -> Self {
        WorkerReport {
            subgraphs: Vec::new(),
            border_balls: 0,
            shipped_balls: 0,
            shipped_nodes: 0,
            shipped_edges: 0,
            built_balls: 0,
            reused_balls: 0,
            warm_started_balls: 0,
            warm_seeded_pairs: 0,
            chunks_processed: 0,
            chunks_stolen: 0,
            balls_per_site: vec![0; sites],
        }
    }
}

/// Runs strong simulation of `pattern` over `data` distributed across
/// `config.sites` simulated sites.
pub fn distributed_strong_simulation(
    pattern: &Pattern,
    data: &Graph,
    config: &DistributedConfig,
) -> Result<DistributedOutput, DistError> {
    distributed_with_prepared(pattern, data, config, None, None)
}

/// [`distributed_strong_simulation`] under a scripted [`FaultPlan`]: site crashes,
/// chunk panics, dropped results and slow-site delays fire at their scripted
/// `(site, chunk, round)` points and are handled by the supervision loop. A non-empty
/// plan requires [`DistributedConfig::recovery`] to be set — scripted faults without a
/// recovery policy would abort the run, which is exactly what the fault plane exists to
/// prevent ([`DistError::FaultPlanNeedsRecovery`]).
pub fn distributed_with_faults(
    pattern: &Pattern,
    data: &Graph,
    config: &DistributedConfig,
    faults: &FaultPlan,
) -> Result<DistributedOutput, DistError> {
    let mut cache = CoordinatorCache::new();
    distributed_impl(
        pattern,
        DistData::Flat(data),
        config,
        None,
        None,
        &mut cache,
        Some(faults),
    )
}

/// [`distributed_strong_simulation`] with the incremental driver's hooks, mirroring
/// [`ssim_core::strong::match_with_prepared`]: a coordinator-maintained global state
/// (skipping the global fixpoint and `Gm` extraction) and a dirty-center filter in
/// data-graph ids — only dirty centers are routed to their owning sites, which is how a
/// delta's work is distributed.
pub fn distributed_with_prepared(
    pattern: &Pattern,
    data: &Graph,
    config: &DistributedConfig,
    prepared: Option<PreparedGlobal<'_>>,
    dirty: Option<&BitSet>,
) -> Result<DistributedOutput, DistError> {
    let mut cache = CoordinatorCache::new();
    distributed_impl(
        pattern,
        DistData::Flat(data),
        config,
        prepared,
        dirty,
        &mut cache,
        None,
    )
}

/// [`distributed_with_prepared`] with a [`CoordinatorCache`] carried across calls (so
/// repeated applies against the same node count reuse the partition and the substrate
/// locality order instead of rebuilding both per delta) and an optional fault plan for
/// chaos-testing the incremental path.
pub fn distributed_with_prepared_cached(
    pattern: &Pattern,
    data: &Graph,
    config: &DistributedConfig,
    prepared: Option<PreparedGlobal<'_>>,
    dirty: Option<&BitSet>,
    cache: &mut CoordinatorCache,
    faults: Option<&FaultPlan>,
) -> Result<DistributedOutput, DistError> {
    distributed_impl(
        pattern,
        DistData::Flat(data),
        config,
        prepared,
        dirty,
        cache,
        faults,
    )
}

/// [`distributed_with_prepared`] without the flat data graph, mirroring
/// [`ssim_core::strong::match_with_prepared_counted`]: on the prepared match-graph
/// substrate every site runs inside the cached `Gm`, so the coordinator only needs the
/// data node count (partitions are id-based) — which lets the incremental driver serve
/// straight from its overlay without materialising a CSR per update.
///
/// Fails with [`DistError::FlatGraphRequired`] when the configuration would traverse
/// raw data adjacency (`dual_filter` off, or a total relation on the full-graph oracle
/// substrate) and with [`DistError::PreparedStateMissingGm`] when the prepared state
/// lacks the extraction the match-graph substrate needs.
pub fn distributed_with_prepared_counted(
    pattern: &Pattern,
    data_node_count: usize,
    config: &DistributedConfig,
    prepared: PreparedGlobal<'_>,
    dirty: Option<&BitSet>,
    cache: &mut CoordinatorCache,
    faults: Option<&FaultPlan>,
) -> Result<DistributedOutput, DistError> {
    distributed_impl(
        pattern,
        DistData::CountOnly(data_node_count),
        config,
        prepared.into(),
        dirty,
        cache,
        faults,
    )
}

/// The public-path gate in front of [`distributed_core`]: a non-empty fault plan
/// without a recovery policy is rejected up front, so no public entry point can panic
/// on a scripted fault. (The core itself accepts the combination — the propagation
/// regression test uses it to drive the fast path's abort behaviour directly.)
fn distributed_impl(
    pattern: &Pattern,
    data: DistData<'_>,
    config: &DistributedConfig,
    prepared: Option<PreparedGlobal<'_>>,
    dirty: Option<&BitSet>,
    cache: &mut CoordinatorCache,
    faults: Option<&FaultPlan>,
) -> Result<DistributedOutput, DistError> {
    if faults.is_some_and(|plan| !plan.is_empty()) && config.recovery.is_none() {
        return Err(DistError::FaultPlanNeedsRecovery);
    }
    distributed_core(pattern, data, config, prepared, dirty, cache, faults)
}

/// Everything the fan-out paths need from the coordinator preamble, bundled so the fast
/// and supervised paths share one signature.
struct FanoutCtx<'a> {
    pattern: &'a Pattern,
    match_data: &'a Graph,
    gm: Option<&'a ExtractedSubgraph>,
    relation: Option<&'a MatchRelation>,
    partition: &'a GraphPartition,
    site_centers: &'a [Vec<NodeId>],
    radius: usize,
    config: &'a DistributedConfig,
}

fn distributed_core(
    pattern: &Pattern,
    data: DistData<'_>,
    config: &DistributedConfig,
    prepared: Option<PreparedGlobal<'_>>,
    dirty: Option<&BitSet>,
    cache: &mut CoordinatorCache,
    faults: Option<&FaultPlan>,
) -> Result<DistributedOutput, DistError> {
    config.validate(data.node_count())?;
    let partition = cache.partition(data.node_count(), config);

    // Coordinator step 1: optionally minimise the query, then "broadcast" it. The ball
    // radius stays the diameter of the original query (Lemma 3).
    let radius = pattern.diameter();
    let effective_pattern = if config.minimize_query {
        minimize_pattern(pattern).pattern
    } else {
        pattern.clone()
    };

    // Coordinator step 1b (dual filter): the global dual-simulation relation — computed
    // once here, or handed in already maintained by the incremental driver.
    let empty_output = |partition: GraphPartition, dirty_balls: usize| {
        let node_count = data.node_count();
        DistributedOutput {
            subgraphs: Vec::new(),
            traffic: TrafficStats {
                considered_balls: node_count,
                skipped_balls: node_count,
                dirty_balls,
                clean_balls: node_count - dirty_balls,
                covered_balls: node_count,
                balls_per_site: vec![0; partition.sites()],
                ..Default::default()
            },
            partition,
            lost_centers: Vec::new(),
        }
    };
    let computed_global: Option<MatchRelation> = match (config.dual_filter, prepared) {
        (true, None) => {
            match dual_simulation_with(&effective_pattern, data.flat()?, RefineStrategy::Worklist) {
                Some(rel) => Some(rel),
                None => {
                    // No ball anywhere can match: skip every center at the coordinator.
                    let dirty_balls = dirty.map_or(data.node_count(), BitSet::len);
                    return Ok(empty_output(partition, dirty_balls));
                }
            }
        }
        _ => None,
    };
    let global_relation: Option<&MatchRelation> = if config.dual_filter {
        match prepared {
            Some(p) => {
                if !p.relation.is_total() {
                    // The maintained fixpoint is empty: no ball anywhere can match.
                    let dirty_balls = dirty.map_or(data.node_count(), BitSet::len);
                    return Ok(empty_output(partition, dirty_balls));
                }
                Some(p.relation)
            }
            None => computed_global.as_ref(),
        }
    } else {
        None
    };
    let extracted: Option<(ExtractedSubgraph, MatchRelation)> = match (global_relation, prepared) {
        (Some(global), None) if config.ball_substrate == BallSubstrate::MatchGraph => {
            let mut matched = BitSet::new(0);
            Some(global.extract_matched_subgraph(data.flat()?, &mut matched))
        }
        _ => None,
    };
    let gm: Option<(&ExtractedSubgraph, &MatchRelation)> = match (global_relation, prepared) {
        (Some(_), Some(p)) if config.ball_substrate == BallSubstrate::MatchGraph => {
            Some(p.gm.ok_or(DistError::PreparedStateMissingGm)?)
        }
        (Some(_), None) if config.ball_substrate == BallSubstrate::MatchGraph => {
            extracted.as_ref().map(|(sub, inner)| (sub, inner))
        }
        _ => None,
    };
    let (match_data, local_relation): (&Graph, Option<&MatchRelation>) = match gm {
        Some((sub, inner)) => (sub.graph(), Some(inner)),
        None => (data.flat()?, global_relation),
    };

    // One locality order over the whole substrate, split by owner (the site owning the
    // *original* node — `Gm` ids translate back for the ownership lookup): site workers
    // walk their own centers in this order so their forests can slide between adjacent
    // ones, and the O(|V| + |E|) ordering BFS is paid once instead of once per site.
    let centers: Vec<NodeId> = match (gm, global_relation) {
        (Some((sub, _)), _) => sub.graph().nodes().collect(),
        (None, Some(global)) => {
            let matched = global.matched_data_nodes();
            data.flat()?
                .nodes()
                .filter(|c| matched.contains(c.index()))
                .collect()
        }
        (None, None) => data.flat()?.nodes().collect(),
    };
    let skipped_balls = data.node_count() - centers.len();
    // Incremental updates route only the dirty centers to their owning sites.
    let centers: Vec<NodeId> = match dirty {
        Some(dirty) => centers
            .into_iter()
            .filter(|&c| {
                let outer = gm.map_or(c, |(sub, _)| sub.outer_of(c));
                dirty.contains(outer.index())
            })
            .collect(),
        None => centers,
    };
    let mut site_centers: Vec<Vec<NodeId>> = vec![Vec::new(); partition.sites()];
    for center in cache.locality(match_data, &centers) {
        let owner = gm.map_or(center, |(sub, _)| sub.outer_of(center));
        site_centers[partition.site_of(owner)].push(center);
    }

    // Coordinator step 2: the sites' balls are evaluated in locality-contiguous chunks
    // through the engine's work-stealing scheduler — one worker per site (clamped to
    // the chunk count), each dealt its own site's chunks first, idle workers stealing
    // whole chunks from loaded sites so a skewed fragment no longer barriers the run.
    let mut site_chunks: Vec<SiteChunk> = Vec::new();
    for (site, centers) in site_centers.iter().enumerate() {
        for (index, range) in chunk_plan(centers.len()).into_iter().enumerate() {
            site_chunks.push(SiteChunk { site, index, range });
        }
    }
    let ctx = FanoutCtx {
        pattern: &effective_pattern,
        match_data,
        gm: gm.map(|(sub, _)| sub),
        relation: local_relation,
        partition: &partition,
        site_centers: &site_centers,
        radius,
        config,
    };
    let (reports, recovery, lost_centers) = match &config.recovery {
        Some(policy) => {
            let empty_plan = FaultPlan::none();
            run_supervised(&ctx, site_chunks, policy, faults.unwrap_or(&empty_plan))
        }
        None => (
            run_fast(&ctx, site_chunks, faults),
            RecoveryStats::default(),
            Vec::new(),
        ),
    };
    if let Some(policy) = &config.recovery {
        if !policy.allow_degraded && !lost_centers.is_empty() {
            return Err(DistError::CoverageLost {
                lost_balls: lost_centers.len(),
                covered_balls: data.node_count() - lost_centers.len(),
            });
        }
    }

    // Assemble the union, deterministically ordered by ball center.
    let dirty_balls = dirty.map_or(data.node_count(), BitSet::len);
    let mut traffic = TrafficStats {
        considered_balls: data.node_count(),
        skipped_balls,
        dirty_balls,
        clean_balls: data.node_count() - dirty_balls,
        covered_balls: data.node_count() - lost_centers.len(),
        lost_balls: lost_centers.len(),
        recovery,
        balls_per_site: vec![0; partition.sites()],
        ..Default::default()
    };
    let mut subgraphs = Vec::new();
    for report in reports {
        traffic.border_balls += report.border_balls;
        traffic.shipped_balls += report.shipped_balls;
        traffic.shipped_nodes += report.shipped_nodes;
        traffic.shipped_edges += report.shipped_edges;
        traffic.built_balls += report.built_balls;
        traffic.reused_balls += report.reused_balls;
        traffic.warm_started_balls += report.warm_started_balls;
        traffic.warm_seeded_pairs += report.warm_seeded_pairs;
        traffic.result_subgraphs += report.subgraphs.len();
        traffic.chunks_processed += report.chunks_processed;
        traffic.chunks_stolen += report.chunks_stolen;
        for (site, balls) in report.balls_per_site.iter().enumerate() {
            traffic.balls_per_site[site] += balls;
        }
        subgraphs.extend(report.subgraphs);
    }
    subgraphs.sort_by_key(|s| s.center);
    Ok(DistributedOutput {
        subgraphs,
        traffic,
        partition,
        lost_centers,
    })
}

/// The zero-overhead fan-out: one long-lived report per worker, panics re-raised with
/// site/chunk coordinates (aborting the run — the behaviour every pre-recovery release
/// had, preserved verbatim for `recovery: None`). The `faults` seam only scripts
/// round-0 panics and is reachable solely through [`distributed_core`] — public entry
/// points reject fault plans without a recovery policy.
fn run_fast(
    ctx: &FanoutCtx<'_>,
    site_chunks: Vec<SiteChunk>,
    faults: Option<&FaultPlan>,
) -> Vec<WorkerReport> {
    let workers = effective_workers(ctx.partition.sites(), site_chunks.len());
    let scheduler = StealScheduler::new(workers, site_chunks);
    let sites = ctx.partition.sites();
    par_workers(workers, |t| {
        let mut report = WorkerReport::new(sites);
        let mut scratch = BallScratch::new();
        let mut forest = BallForest::new(ctx.match_data, ctx.radius);
        let mut warm = (ctx.config.refine_seed == RefineSeed::WarmStart)
            .then(|| WarmMatcher::new(ctx.pattern));
        while let Some((chunk, stolen)) = scheduler.next(t) {
            report.chunks_processed += 1;
            report.chunks_stolen += usize::from(stolen);
            // Chunk boundaries sever the slide and carry chains (a stolen chunk's first
            // center belongs to another site entirely), keeping per-ball behaviour a
            // function of chunk content alone.
            forest.reset_chain();
            if let Some(warm) = warm.as_mut() {
                warm.reset_chain();
            }
            let caught = catch_unwind(AssertUnwindSafe(|| {
                if faults.and_then(|plan| plan.action_at(chunk.site, chunk.index, 0))
                    == Some(FaultAction::Panic)
                {
                    panic!("injected fault: scripted worker panic");
                }
                evaluate_chunk(
                    chunk.site,
                    ctx.pattern,
                    ctx.match_data,
                    ctx.gm,
                    ctx.relation,
                    ctx.partition,
                    &ctx.site_centers[chunk.site][chunk.range.clone()],
                    &mut forest,
                    &mut warm,
                    &mut scratch,
                    &mut report,
                    ctx.config.repetition,
                    ctx.config.repetition_mode,
                )
            }));
            if let Err(payload) = caught {
                panic!(
                    "worker {t} panicked in site {} chunk {}..{}: {}",
                    chunk.site,
                    chunk.range.start,
                    chunk.range.end,
                    panic_message(&*payload)
                );
            }
        }
        // The forest is the single source of truth for the built/reused split, the warm
        // matcher for the seeding split; both accumulate across this worker's chunks.
        report.built_balls = forest.built_fresh;
        report.reused_balls = forest.reused;
        if let Some(warm) = &warm {
            report.warm_started_balls = warm.stats.warm_balls;
            report.warm_seeded_pairs = warm.stats.seeded_pairs;
        }
        report
    })
}

/// A chunk the supervision loop still owes a result for.
struct PendingChunk {
    /// Owning site — the chunk's identity, stable across reassignment.
    site: usize,
    /// Ordinal within the owning site's chunk plan.
    index: usize,
    range: std::ops::Range<usize>,
    /// Failed attempts so far; past `chunk_retries` the chunk is lost.
    failures: usize,
    /// Site currently responsible for executing it (≠ `site` after a reassignment).
    assigned: usize,
}

/// One chunk execution dispatched within a supervision round.
struct RoundItem {
    /// Position in the round's `pending` list.
    slot: usize,
    site: usize,
    index: usize,
    range: std::ops::Range<usize>,
}

/// What one chunk attempt produced.
enum AttemptOutcome {
    /// Evaluation completed and the result message arrived (possibly `delay` virtual
    /// ticks late, below the timeout).
    Success { report: WorkerReport, delay: u64 },
    /// The worker panicked (scripted or genuine) and the supervisor contained it.
    Panicked,
    /// Evaluation completed but the result message was lost in transit.
    Dropped,
    /// The scripted delay reached the policy timeout.
    TimedOut,
}

/// The supervised fan-out: rounds are barriers, every attempt is individually
/// contained, and all failure handling happens at the coordinator in chunk-id order —
/// which makes every recovery counter a deterministic function of the input and the
/// fault plan (only `chunks_stolen` remains schedule-dependent). Returns the successful
/// per-chunk reports, the recovery trace and the lost centers (outer ids, ascending).
fn run_supervised(
    ctx: &FanoutCtx<'_>,
    site_chunks: Vec<SiteChunk>,
    policy: &RecoveryPolicy,
    plan: &FaultPlan,
) -> (Vec<WorkerReport>, RecoveryStats, Vec<NodeId>) {
    let sites = ctx.partition.sites();
    let mut stats = RecoveryStats::default();
    let mut dead = vec![false; sites];
    let mut pending: Vec<PendingChunk> = site_chunks
        .into_iter()
        .map(|c| PendingChunk {
            site: c.site,
            index: c.index,
            range: c.range,
            failures: 0,
            assigned: c.site,
        })
        .collect();
    let mut done: Vec<WorkerReport> = Vec::new();
    let mut lost: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    let mut round = 0usize;
    while !pending.is_empty() {
        // Crashes scheduled at or before this round take effect at its start: the dead
        // site's unfinished chunks move to survivors (round-robin, in chunk order)
        // before anything executes, so a crash never consumes a chunk's retries.
        // Results shipped in earlier rounds already live at the coordinator.
        for (site, when) in plan.crashes() {
            if when <= round && site < sites && !dead[site] {
                dead[site] = true;
                stats.site_crashes += 1;
            }
        }
        let survivors: Vec<usize> = (0..sites).filter(|&s| !dead[s]).collect();
        if survivors.is_empty() {
            // Nobody left to reassign to: every pending chunk is lost.
            stats.chunks_lost += pending.len();
            lost.extend(pending.drain(..).map(|c| (c.site, c.range)));
            break;
        }
        let mut rr = 0usize;
        for chunk in &mut pending {
            if dead[chunk.assigned] {
                chunk.assigned = survivors[rr % survivors.len()];
                rr += 1;
                stats.chunks_reassigned += 1;
            }
        }

        // Execute this round's attempts through the steal scheduler, ordered by
        // assigned site so each live site's worker is dealt its own chunks first.
        let mut order: Vec<usize> = (0..pending.len()).collect();
        order.sort_by_key(|&i| (pending[i].assigned, pending[i].site, pending[i].index));
        let items: Vec<RoundItem> = order
            .iter()
            .map(|&i| RoundItem {
                slot: i,
                site: pending[i].site,
                index: pending[i].index,
                range: pending[i].range.clone(),
            })
            .collect();
        let workers = effective_workers(survivors.len(), items.len());
        let scheduler = StealScheduler::new(workers, items);
        let outcomes: Vec<Vec<(usize, AttemptOutcome)>> = par_workers(workers, |t| {
            let mut out: Vec<(usize, AttemptOutcome)> = Vec::new();
            let mut scratch = BallScratch::new();
            let mut forest = BallForest::new(ctx.match_data, ctx.radius);
            let mut warm = (ctx.config.refine_seed == RefineSeed::WarmStart)
                .then(|| WarmMatcher::new(ctx.pattern));
            while let Some((item, stolen)) = scheduler.next(t) {
                let scripted = plan.action_at(item.site, item.index, round);
                let outcome = if scripted == Some(FaultAction::Panic) {
                    // The scripted panic unwinds through the same containment a genuine
                    // one would; the sliding state is untouched (nothing ran).
                    let unwound = catch_unwind(AssertUnwindSafe(|| {
                        panic!("injected fault: scripted worker panic");
                    }));
                    debug_assert!(unwound.is_err());
                    AttemptOutcome::Panicked
                } else {
                    let mut report = WorkerReport::new(sites);
                    report.chunks_processed = 1;
                    report.chunks_stolen = usize::from(stolen);
                    forest.reset_chain();
                    if let Some(warm) = warm.as_mut() {
                        warm.reset_chain();
                    }
                    // Per-attempt counter snapshots: the forest and warm matcher
                    // accumulate across this worker's attempts, so each chunk's share
                    // is the delta — discarded wholesale when the attempt fails.
                    let built0 = forest.built_fresh;
                    let reused0 = forest.reused;
                    let warm0 = warm
                        .as_ref()
                        .map(|w| (w.stats.warm_balls, w.stats.seeded_pairs));
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        evaluate_chunk(
                            item.site,
                            ctx.pattern,
                            ctx.match_data,
                            ctx.gm,
                            ctx.relation,
                            ctx.partition,
                            &ctx.site_centers[item.site][item.range.clone()],
                            &mut forest,
                            &mut warm,
                            &mut scratch,
                            &mut report,
                            ctx.config.repetition,
                            ctx.config.repetition_mode,
                        )
                    }));
                    match caught {
                        Err(_) => {
                            // A mid-chunk unwind may leave the sliding state without
                            // its invariants; replace it wholesale so later attempts
                            // on this worker start from known-good state.
                            forest = BallForest::new(ctx.match_data, ctx.radius);
                            warm = (ctx.config.refine_seed == RefineSeed::WarmStart)
                                .then(|| WarmMatcher::new(ctx.pattern));
                            scratch = BallScratch::new();
                            AttemptOutcome::Panicked
                        }
                        Ok(()) => {
                            report.built_balls = forest.built_fresh - built0;
                            report.reused_balls = forest.reused - reused0;
                            if let (Some(warm), Some((wb0, sp0))) = (warm.as_ref(), warm0) {
                                report.warm_started_balls = warm.stats.warm_balls - wb0;
                                report.warm_seeded_pairs = warm.stats.seeded_pairs - sp0;
                            }
                            match scripted {
                                Some(FaultAction::DropResult) => AttemptOutcome::Dropped,
                                Some(FaultAction::Delay(t)) if t >= policy.chunk_timeout_ticks => {
                                    AttemptOutcome::TimedOut
                                }
                                Some(FaultAction::Delay(t)) => {
                                    AttemptOutcome::Success { report, delay: t }
                                }
                                _ => AttemptOutcome::Success { report, delay: 0 },
                            }
                        }
                    }
                };
                out.push((item.slot, outcome));
            }
            out
        });

        // Coordinator processing, deterministically in chunk-id order regardless of
        // which worker ran what.
        let mut flat: Vec<(usize, AttemptOutcome)> = outcomes.into_iter().flatten().collect();
        flat.sort_by_key(|&(slot, _)| (pending[slot].site, pending[slot].index));
        let mut finished = vec![false; pending.len()];
        for (slot, outcome) in flat {
            let failed = match outcome {
                AttemptOutcome::Success { report, delay } => {
                    stats.delay_ticks += delay;
                    done.push(report);
                    finished[slot] = true;
                    false
                }
                AttemptOutcome::Panicked => {
                    stats.panics_contained += 1;
                    true
                }
                AttemptOutcome::Dropped => {
                    stats.results_dropped += 1;
                    true
                }
                AttemptOutcome::TimedOut => {
                    stats.chunk_timeouts += 1;
                    true
                }
            };
            if failed {
                let chunk = &mut pending[slot];
                chunk.failures += 1;
                if chunk.failures > policy.chunk_retries {
                    stats.chunks_lost += 1;
                    finished[slot] = true;
                    lost.push((chunk.site, chunk.range.clone()));
                } else {
                    stats.chunk_retries += 1;
                    stats.backoff_ticks +=
                        policy.backoff_ticks << (chunk.failures - 1).min(32) as u32;
                }
            }
        }
        let mut keep = finished.iter().map(|&f| !f);
        pending.retain(|_| keep.next().expect("one flag per chunk"));
        if pending.is_empty() {
            break;
        }
        round += 1;
        stats.retry_rounds += 1;
    }

    // Lost chunks' centers, translated to the caller's id space and sorted.
    let outer_of = |v: NodeId| ctx.gm.map_or(v, |sub| sub.outer_of(v));
    let mut lost_centers: Vec<NodeId> = lost
        .into_iter()
        .flat_map(|(site, range)| ctx.site_centers[site][range].iter().copied())
        .map(outer_of)
        .collect();
    lost_centers.sort_unstable();
    (done, stats, lost_centers)
}

/// Evaluates one chunk of `site`'s balls with the calling worker's sliding state.
/// `centers` is the chunk's slice of the site's locality order, in `data`'s id space —
/// which is the coordinator's `Gm` slice when `gm` is present (`data` is then the
/// extracted graph, and ownership/traffic lookups translate through it). A center is
/// owned by exactly one site and appears in exactly one chunk, so each ball is evaluated
/// — and charged as built or reused — exactly once across the whole run. The forest and
/// warm matcher arrive freshly reset; within the chunk they slide/carry between the
/// locality-adjacent centers.
#[allow(clippy::too_many_arguments)]
fn evaluate_chunk(
    site: usize,
    pattern: &Pattern,
    data: &Graph,
    gm: Option<&ExtractedSubgraph>,
    global_relation: Option<&MatchRelation>,
    partition: &GraphPartition,
    centers: &[NodeId],
    forest: &mut BallForest<'_>,
    warm: &mut Option<WarmMatcher>,
    scratch: &mut BallScratch,
    report: &mut WorkerReport,
    repetition: RepetitionSemantics,
    repetition_mode: RepetitionMode,
) {
    // Ownership and the border metric live on the *original* graph's ids.
    let outer_of = |v: NodeId| gm.map_or(v, |sub| sub.outer_of(v));
    for &center in centers {
        report.balls_per_site[site] += 1;
        // Border centers: a substrate neighbour stored on a different site. On the
        // match-graph substrate this is `Gm` adjacency — only edges a ball could ship.
        if partition.is_border_node_translated(data, center, outer_of) {
            report.border_balls += 1;
        }
        forest.advance(center);
        let ball = forest.compact(scratch);
        // Traffic accounting: every ball member stored on a different site would have to be
        // shipped to this site, together with its incident ball edges. On the match-graph
        // substrate the members and edges *are* `Gm`'s — exactly the data a site would
        // fetch — so the counts are taken over the substrate adjacency.
        let foreign: Vec<NodeId> = ball
            .to_global()
            .iter()
            .copied()
            .filter(|&v| partition.site_of(outer_of(v)) != site)
            .collect();
        if !foreign.is_empty() {
            report.shipped_balls += 1;
            report.shipped_nodes += foreign.len();
            for &v in &foreign {
                report.shipped_edges += data
                    .out_neighbors(v)
                    .chain(data.in_neighbors(v))
                    .filter(|w| ball.local_of(*w).is_some())
                    .count();
            }
        }
        // Warm-starting rides slides; rebuilt balls take the plain scratch unit of
        // work (`WarmMatcher::wants` invalidates the site's carried relation).
        let ball_move = forest.last_move();
        let use_warm_ball = warm.as_mut().is_some_and(|w| w.wants(ball_move));
        let subgraph = if use_warm_ball {
            let warm = warm.as_mut().expect("gate implies matcher");
            // Same unit of work as the scratch arm below, but seeded from the site's
            // previous ball.
            warm.match_ball(
                pattern,
                data,
                &ball,
                ball_move,
                forest.entered(),
                forest.left(),
                global_relation,
                false,
                RefineStrategy::Worklist,
                repetition,
                repetition_mode,
            )
            .0
        } else if let Some(global) = global_relation {
            match_compact_ball_filtered_with(
                pattern,
                &ball,
                data,
                global,
                repetition,
                repetition_mode,
            )
            .0
        } else {
            match_compact_ball_with(pattern, &ball, data, repetition, repetition_mode).0
        };
        if let Some(subgraph) = subgraph {
            // The id-translation boundary: sites speak substrate ids, reports speak the
            // caller's data-graph ids.
            report.subgraphs.push(match gm {
                Some(sub) => translate_to_outer(subgraph, sub),
                None => subgraph,
            });
        }
        ball.recycle(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_core::strong::{strong_simulation, MatchConfig};
    use ssim_datasets::paper;
    use ssim_datasets::patterns::extract_pattern;
    use ssim_datasets::synthetic::{synthetic, SyntheticConfig};

    #[test]
    fn distributed_equals_centralized_on_figure1() {
        let fig = paper::figure1();
        let central = strong_simulation(&fig.pattern, &fig.data, &MatchConfig::basic());
        for sites in [1, 2, 3, 5] {
            for strategy in [PartitionStrategy::Hash, PartitionStrategy::Range] {
                let config = DistributedConfig {
                    sites,
                    strategy,
                    minimize_query: false,
                    ..DistributedConfig::default()
                };
                let out = distributed_strong_simulation(&fig.pattern, &fig.data, &config)
                    .expect("valid configuration");
                assert_eq!(
                    central.matched_nodes(),
                    out.matched_nodes(),
                    "sites={sites} strategy={strategy:?}"
                );
                assert_eq!(central.subgraphs.len(), out.subgraphs.len());
                // Full coverage on a fault-free run.
                assert_eq!(out.traffic.covered_balls, fig.data.node_count());
                assert_eq!(out.traffic.lost_balls, 0);
                assert!(out.lost_centers.is_empty());
            }
        }
    }

    #[test]
    fn distributed_equals_centralized_on_synthetic_data() {
        let data = synthetic(&SyntheticConfig {
            nodes: 250,
            alpha: 1.15,
            labels: 12,
            seed: 3,
        });
        let pattern = extract_pattern(&data, 4, 9).expect("pattern extraction succeeds");
        let central = strong_simulation(&pattern, &data, &MatchConfig::basic());
        let out = distributed_strong_simulation(
            &pattern,
            &data,
            &DistributedConfig {
                sites: 4,
                strategy: PartitionStrategy::Hash,
                minimize_query: true,
                ..DistributedConfig::default()
            },
        )
        .expect("valid configuration");
        assert_eq!(central.matched_nodes(), out.matched_nodes());
        assert_eq!(central.subgraphs.len(), out.subgraphs.len());
    }

    #[test]
    fn single_site_ships_nothing() {
        let fig = paper::figure2_books();
        let out = distributed_strong_simulation(
            &fig.pattern,
            &fig.data,
            &DistributedConfig {
                sites: 1,
                strategy: PartitionStrategy::Hash,
                minimize_query: false,
                ..DistributedConfig::default()
            },
        )
        .expect("valid configuration");
        assert_eq!(out.traffic.shipped_balls, 0);
        assert_eq!(out.traffic.shipped_nodes, 0);
        assert_eq!(out.traffic.border_balls, 0);
        assert_eq!(out.traffic.balls_per_site, vec![fig.data.node_count()]);
    }

    #[test]
    fn shipping_is_bounded_by_border_balls_times_ball_size() {
        let data = synthetic(&SyntheticConfig {
            nodes: 150,
            alpha: 1.1,
            labels: 8,
            seed: 21,
        });
        let pattern = extract_pattern(&data, 3, 4).unwrap();
        let out = distributed_strong_simulation(
            &pattern,
            &data,
            &DistributedConfig {
                sites: 3,
                strategy: PartitionStrategy::Range,
                minimize_query: false,
                ..DistributedConfig::default()
            },
        )
        .expect("valid configuration");
        // Shipped balls can never exceed the total number of balls, and every shipped ball
        // ships at most the whole graph.
        let total_balls: usize = out.traffic.balls_per_site.iter().sum();
        assert_eq!(total_balls, data.node_count());
        assert!(out.traffic.shipped_balls <= total_balls);
        assert!(out.traffic.shipped_nodes <= out.traffic.shipped_balls * data.node_count());
        assert_eq!(out.traffic.result_subgraphs, out.subgraphs.len());
    }

    #[test]
    fn ball_reuse_is_counted_once_per_ball_across_sites() {
        let data = synthetic(&SyntheticConfig {
            nodes: 180,
            alpha: 1.12,
            labels: 10,
            seed: 9,
        });
        let pattern = extract_pattern(&data, 3, 5).unwrap();
        for sites in [1, 3, 6] {
            for strategy in [PartitionStrategy::Hash, PartitionStrategy::Range] {
                let out = distributed_strong_simulation(
                    &pattern,
                    &data,
                    &DistributedConfig {
                        sites,
                        strategy,
                        minimize_query: false,
                        ..DistributedConfig::default()
                    },
                )
                .expect("valid configuration");
                let total: usize = out.traffic.balls_per_site.iter().sum();
                assert_eq!(total, data.node_count());
                // Every ball is charged exactly once: built or reused, at one site.
                assert_eq!(
                    out.traffic.built_balls + out.traffic.reused_balls,
                    total,
                    "sites={sites} strategy={strategy:?}"
                );
                assert!(out.traffic.built_balls >= sites.min(data.node_count()).min(1));
            }
        }
        // On a contiguous range partition of a connected-ish graph most same-site
        // neighbours stay adjacent, so some reuse must materialise.
        let range = distributed_strong_simulation(
            &pattern,
            &data,
            &DistributedConfig {
                sites: 3,
                strategy: PartitionStrategy::Range,
                minimize_query: false,
                ..DistributedConfig::default()
            },
        )
        .expect("valid configuration");
        assert!(
            range.traffic.reused_balls > 0,
            "range partition never slides"
        );
    }

    #[test]
    fn warm_and_scratch_sites_return_identical_results() {
        let data = synthetic(&SyntheticConfig {
            nodes: 200,
            alpha: 1.15,
            labels: 9,
            seed: 17,
        });
        let pattern = extract_pattern(&data, 4, 2).expect("pattern extraction succeeds");
        for sites in [1, 3, 5] {
            for strategy in [PartitionStrategy::Hash, PartitionStrategy::Range] {
                let base = DistributedConfig {
                    sites,
                    strategy,
                    minimize_query: false,
                    ..DistributedConfig::default()
                };
                let warm = distributed_strong_simulation(&pattern, &data, &base)
                    .expect("valid configuration");
                let scratch = distributed_strong_simulation(
                    &pattern,
                    &data,
                    &DistributedConfig {
                        refine_seed: RefineSeed::FromScratch,
                        ..base
                    },
                )
                .expect("valid configuration");
                assert_eq!(
                    warm.subgraphs.len(),
                    scratch.subgraphs.len(),
                    "sites={sites} strategy={strategy:?}"
                );
                for (a, b) in warm.subgraphs.iter().zip(&scratch.subgraphs) {
                    assert_eq!(a.center, b.center);
                    assert_eq!(a.nodes, b.nodes);
                    assert_eq!(a.edges, b.edges);
                    assert_eq!(a.relation, b.relation);
                }
                // The oracle never warm-starts, and warm starts are bounded by the
                // balls actually evaluated.
                assert_eq!(scratch.traffic.warm_started_balls, 0);
                assert!(
                    warm.traffic.warm_started_balls
                        <= warm.traffic.built_balls + warm.traffic.reused_balls,
                    "more warm starts than balls"
                );
                // The scratch sites bypass the warm matcher entirely.
                assert_eq!(scratch.traffic.warm_seeded_pairs, 0);
            }
        }
        // On a range-partitioned chain every site slides along its own stretch, so the
        // sites' warm chains must actually engage.
        let n = 120u32;
        let labels: Vec<ssim_graph::Label> = (0..n).map(|i| ssim_graph::Label(i % 2)).collect();
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let chain = ssim_graph::Graph::from_edges(labels, &edges).unwrap();
        let chain_pattern = ssim_graph::Pattern::from_edges(
            vec![ssim_graph::Label(0), ssim_graph::Label(1)],
            &[(0, 1)],
        )
        .unwrap();
        let warm = distributed_strong_simulation(
            &chain_pattern,
            &chain,
            &DistributedConfig {
                sites: 3,
                strategy: PartitionStrategy::Range,
                minimize_query: false,
                ..DistributedConfig::default()
            },
        )
        .expect("valid configuration");
        assert!(
            warm.traffic.warm_started_balls > 0,
            "range-partitioned chain never warm-started a ball"
        );
    }

    #[test]
    fn dual_filter_skips_unmatched_centers_and_matches_centralized() {
        use ssim_core::ball::BallSubstrate;
        let data = synthetic(&SyntheticConfig {
            nodes: 220,
            alpha: 1.15,
            labels: 10,
            seed: 5,
        });
        let pattern = extract_pattern(&data, 4, 7).expect("pattern extraction succeeds");
        // The centralized reference: dual filter on, no minimization/pruning (the
        // distributed sites run the plain per-ball unit of work).
        let central = strong_simulation(
            &pattern,
            &data,
            &MatchConfig {
                dual_filter: true,
                ..MatchConfig::basic()
            },
        );
        for substrate in [BallSubstrate::MatchGraph, BallSubstrate::FullGraph] {
            for sites in [1, 3, 5] {
                for strategy in [PartitionStrategy::Hash, PartitionStrategy::Range] {
                    let out = distributed_strong_simulation(
                        &pattern,
                        &data,
                        &DistributedConfig {
                            sites,
                            strategy,
                            minimize_query: false,
                            dual_filter: true,
                            ball_substrate: substrate,
                            ..DistributedConfig::default()
                        },
                    )
                    .expect("valid configuration");
                    let ctx = format!("substrate={substrate:?} sites={sites} {strategy:?}");
                    assert_eq!(central.subgraphs.len(), out.subgraphs.len(), "{ctx}");
                    for (a, b) in central.subgraphs.iter().zip(&out.subgraphs) {
                        assert_eq!(a.center, b.center, "{ctx}");
                        assert_eq!(a.nodes, b.nodes, "{ctx}");
                        assert_eq!(a.edges, b.edges, "{ctx}");
                        assert_eq!(a.relation, b.relation, "{ctx}");
                    }
                    // Skipped-vs-considered sums to |V| on both substrates.
                    let evaluated: usize = out.traffic.balls_per_site.iter().sum();
                    assert_eq!(out.traffic.considered_balls, data.node_count(), "{ctx}");
                    assert_eq!(
                        out.traffic.skipped_balls + evaluated,
                        out.traffic.considered_balls,
                        "{ctx}"
                    );
                    assert_eq!(
                        out.traffic.skipped_balls, central.stats.balls_skipped,
                        "{ctx}"
                    );
                    assert_eq!(
                        out.traffic.built_balls + out.traffic.reused_balls,
                        evaluated,
                        "{ctx}"
                    );
                }
            }
        }
        // Without the filter nothing is skipped and every node is evaluated.
        let unfiltered = distributed_strong_simulation(
            &pattern,
            &data,
            &DistributedConfig {
                sites: 3,
                minimize_query: false,
                ..DistributedConfig::default()
            },
        )
        .expect("valid configuration");
        assert_eq!(unfiltered.traffic.considered_balls, data.node_count());
        assert_eq!(unfiltered.traffic.skipped_balls, 0);
    }

    #[test]
    fn dual_filter_rejecting_graph_skips_every_center() {
        // A pattern whose label is absent: the coordinator's global relation is empty.
        let data = synthetic(&SyntheticConfig {
            nodes: 60,
            alpha: 1.2,
            labels: 4,
            seed: 2,
        });
        let pattern = ssim_graph::Pattern::from_edges(
            vec![ssim_graph::Label(77), ssim_graph::Label(78)],
            &[(0, 1)],
        )
        .unwrap();
        let out = distributed_strong_simulation(
            &pattern,
            &data,
            &DistributedConfig {
                sites: 3,
                minimize_query: false,
                dual_filter: true,
                ..DistributedConfig::default()
            },
        )
        .expect("valid configuration");
        assert!(out.subgraphs.is_empty());
        assert_eq!(out.traffic.considered_balls, data.node_count());
        assert_eq!(out.traffic.skipped_balls, data.node_count());
        assert_eq!(out.traffic.balls_per_site, vec![0, 0, 0]);
        // The short-circuit path still reports full coverage.
        assert_eq!(out.traffic.covered_balls, data.node_count());
        assert_eq!(out.traffic.lost_balls, 0);
    }

    #[test]
    fn range_partition_ships_less_than_hash_partition() {
        // On a long path graph the range partition has O(sites) border nodes while the hash
        // partition makes nearly every node a border node, so range must ship less.
        let n = 200u32;
        let labels: Vec<ssim_graph::Label> = (0..n).map(|i| ssim_graph::Label(i % 2)).collect();
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let data = ssim_graph::Graph::from_edges(labels, &edges).unwrap();
        let pattern = ssim_graph::Pattern::from_edges(
            vec![ssim_graph::Label(0), ssim_graph::Label(1)],
            &[(0, 1)],
        )
        .unwrap();
        let hash = distributed_strong_simulation(
            &pattern,
            &data,
            &DistributedConfig {
                sites: 4,
                strategy: PartitionStrategy::Hash,
                minimize_query: false,
                ..DistributedConfig::default()
            },
        )
        .expect("valid configuration");
        let range = distributed_strong_simulation(
            &pattern,
            &data,
            &DistributedConfig {
                sites: 4,
                strategy: PartitionStrategy::Range,
                minimize_query: false,
                ..DistributedConfig::default()
            },
        )
        .expect("valid configuration");
        assert_eq!(hash.matched_nodes(), range.matched_nodes());
        assert!(
            range.traffic.shipped_nodes < hash.traffic.shipped_nodes,
            "range partition ({}) should ship no more than hash ({})",
            range.traffic.shipped_nodes,
            hash.traffic.shipped_nodes
        );
    }

    // --- Fault tolerance ---------------------------------------------------------

    fn small_case() -> (Pattern, Graph) {
        let data = synthetic(&SyntheticConfig {
            nodes: 120,
            alpha: 1.15,
            labels: 8,
            seed: 7,
        });
        let pattern = extract_pattern(&data, 3, 5).expect("pattern extraction succeeds");
        (pattern, data)
    }

    /// Zeroes the counters a fault plan or steal timing is allowed to perturb.
    fn normalized(t: &TrafficStats) -> TrafficStats {
        TrafficStats {
            chunks_stolen: 0,
            recovery: RecoveryStats::default(),
            ..t.clone()
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_setups() {
        let (pattern, data) = small_case();
        let zero_sites = DistributedConfig {
            sites: 0,
            ..DistributedConfig::default()
        };
        assert_eq!(
            distributed_strong_simulation(&pattern, &data, &zero_sites).unwrap_err(),
            DistError::NoSites
        );
        let too_many = DistributedConfig {
            sites: data.node_count() + 1,
            ..DistributedConfig::default()
        };
        assert_eq!(
            distributed_strong_simulation(&pattern, &data, &too_many).unwrap_err(),
            DistError::MoreSitesThanNodes {
                sites: data.node_count() + 1,
                nodes: data.node_count()
            }
        );
        let useless = DistributedConfig {
            recovery: Some(RecoveryPolicy {
                chunk_retries: 0,
                allow_degraded: false,
                ..RecoveryPolicy::default()
            }),
            ..DistributedConfig::default()
        };
        assert_eq!(
            distributed_strong_simulation(&pattern, &data, &useless).unwrap_err(),
            DistError::UselessRecoveryPolicy
        );
        // A scripted fault without a recovery policy is rejected, not executed.
        let mut plan = FaultPlan::none();
        plan.panic_chunk(0, 0, 0);
        assert_eq!(
            distributed_with_faults(&pattern, &data, &DistributedConfig::default(), &plan)
                .unwrap_err(),
            DistError::FaultPlanNeedsRecovery
        );
    }

    #[test]
    fn counted_entry_without_gm_returns_typed_errors() {
        let (pattern, data) = small_case();
        let relation = dual_simulation_with(&pattern, &data, RefineStrategy::Worklist)
            .expect("extracted pattern matches its own graph");
        let mut cache = CoordinatorCache::new();
        // Without the dual filter the counted path must traverse the flat graph.
        let flat_needed = DistributedConfig {
            dual_filter: false,
            ..DistributedConfig::default()
        };
        let err = distributed_with_prepared_counted(
            &pattern,
            data.node_count(),
            &flat_needed,
            PreparedGlobal {
                relation: &relation,
                gm: None,
            },
            None,
            &mut cache,
            None,
        )
        .unwrap_err();
        assert_eq!(err, DistError::FlatGraphRequired);
        // The match-graph substrate requires the prepared Gm extraction.
        let gm_needed = DistributedConfig {
            dual_filter: true,
            ball_substrate: BallSubstrate::MatchGraph,
            ..DistributedConfig::default()
        };
        let err = distributed_with_prepared_counted(
            &pattern,
            data.node_count(),
            &gm_needed,
            PreparedGlobal {
                relation: &relation,
                gm: None,
            },
            None,
            &mut cache,
            None,
        )
        .unwrap_err();
        assert_eq!(err, DistError::PreparedStateMissingGm);
    }

    #[test]
    fn scripted_panic_propagates_without_recovery() {
        // The pre-recovery abort behaviour, pinned: on the fast path a worker panic
        // re-raises with site/chunk coordinates. Driven through the private core — the
        // public entry points refuse fault plans without a recovery policy.
        let (pattern, data) = small_case();
        let mut plan = FaultPlan::none();
        plan.panic_chunk(0, 0, 0);
        let config = DistributedConfig {
            sites: 2,
            minimize_query: false,
            ..DistributedConfig::default()
        };
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut cache = CoordinatorCache::new();
            distributed_core(
                &pattern,
                DistData::Flat(&data),
                &config,
                None,
                None,
                &mut cache,
                Some(&plan),
            )
        }));
        let payload = caught.expect_err("the scripted panic must abort the fast path");
        let message = panic_message(&*payload).to_string();
        assert!(
            message.contains("panicked in site 0 chunk"),
            "unexpected panic message: {message}"
        );
        assert!(message.contains("injected fault"), "{message}");
    }

    #[test]
    fn contained_panic_completes_bit_identical() {
        // The containment twin: the same injected panic, with a recovery policy on,
        // completes and the output is bit-identical to the fault-free run.
        let (pattern, data) = small_case();
        let mut plan = FaultPlan::none();
        plan.panic_chunk(0, 0, 0);
        let base = DistributedConfig {
            sites: 2,
            minimize_query: false,
            ..DistributedConfig::default()
        };
        let fault_free = distributed_strong_simulation(&pattern, &data, &base).unwrap();
        let supervised = DistributedConfig {
            recovery: Some(RecoveryPolicy::default()),
            ..base
        };
        let recovered = distributed_with_faults(&pattern, &data, &supervised, &plan).unwrap();
        assert_eq!(fault_free.subgraphs, recovered.subgraphs);
        assert_eq!(
            normalized(&fault_free.traffic),
            normalized(&recovered.traffic)
        );
        assert!(recovered.lost_centers.is_empty());
        // The recovery trace records exactly the one contained panic and its retry.
        let rec = &recovered.traffic.recovery;
        assert_eq!(rec.panics_contained, 1);
        assert_eq!(rec.chunk_retries, 1);
        assert_eq!(rec.retry_rounds, 1);
        assert_eq!(rec.chunks_lost, 0);
        assert_eq!(rec.site_crashes, 0);
    }

    #[test]
    fn crash_reassigns_chunks_without_losing_results() {
        let (pattern, data) = small_case();
        let base = DistributedConfig {
            sites: 3,
            minimize_query: false,
            ..DistributedConfig::default()
        };
        let fault_free = distributed_strong_simulation(&pattern, &data, &base).unwrap();
        let mut plan = FaultPlan::none();
        plan.crash_site(1, 0);
        let supervised = DistributedConfig {
            recovery: Some(RecoveryPolicy::default()),
            ..base
        };
        let recovered = distributed_with_faults(&pattern, &data, &supervised, &plan).unwrap();
        assert_eq!(fault_free.subgraphs, recovered.subgraphs);
        assert_eq!(
            normalized(&fault_free.traffic),
            normalized(&recovered.traffic)
        );
        let rec = &recovered.traffic.recovery;
        assert_eq!(rec.site_crashes, 1);
        assert!(rec.chunks_reassigned > 0, "the dead site owned chunks");
        assert_eq!(rec.chunks_lost, 0);
        // Reassigned chunks stay charged to the owning site's ledger.
        assert_eq!(
            recovered.traffic.balls_per_site,
            fault_free.traffic.balls_per_site
        );
    }

    #[test]
    fn unrecoverable_loss_degrades_with_exact_coverage() {
        let (pattern, data) = small_case();
        let base = DistributedConfig {
            sites: 2,
            minimize_query: false,
            ..DistributedConfig::default()
        };
        let fault_free = distributed_strong_simulation(&pattern, &data, &base).unwrap();
        // Site 0's first chunk panics on every attempt within the budget: lost.
        let policy = RecoveryPolicy::default();
        let mut plan = FaultPlan::none();
        for round in 0..=policy.chunk_retries {
            plan.panic_chunk(0, 0, round);
        }
        let supervised = DistributedConfig {
            recovery: Some(policy),
            ..base
        };
        let degraded = distributed_with_faults(&pattern, &data, &supervised, &plan).unwrap();
        assert!(!degraded.lost_centers.is_empty());
        assert_eq!(
            degraded.traffic.covered_balls + degraded.traffic.lost_balls,
            data.node_count()
        );
        assert_eq!(degraded.traffic.lost_balls, degraded.lost_centers.len());
        assert_eq!(degraded.traffic.recovery.chunks_lost, 1);
        // Surviving subgraphs are exactly the fault-free rows minus the lost centers.
        let lost: std::collections::BTreeSet<NodeId> =
            degraded.lost_centers.iter().copied().collect();
        let expected: Vec<_> = fault_free
            .subgraphs
            .iter()
            .filter(|s| !lost.contains(&s.center))
            .cloned()
            .collect();
        assert_eq!(degraded.subgraphs, expected);
        // The same schedule under a fail-fast policy is a typed error, not a panic.
        let strict = DistributedConfig {
            recovery: Some(RecoveryPolicy {
                allow_degraded: false,
                ..policy
            }),
            ..base
        };
        let err = distributed_with_faults(&pattern, &data, &strict, &plan).unwrap_err();
        assert!(matches!(err, DistError::CoverageLost { .. }));
    }

    #[test]
    fn all_sites_crashing_loses_every_ball() {
        let (pattern, data) = small_case();
        let base = DistributedConfig {
            sites: 3,
            minimize_query: false,
            recovery: Some(RecoveryPolicy::default()),
            ..DistributedConfig::default()
        };
        let mut plan = FaultPlan::none();
        for site in 0..3 {
            plan.crash_site(site, 0);
        }
        let out = distributed_with_faults(&pattern, &data, &base, &plan).unwrap();
        assert!(out.subgraphs.is_empty());
        assert_eq!(out.traffic.lost_balls, data.node_count());
        assert_eq!(out.traffic.covered_balls, 0);
        assert_eq!(out.lost_centers.len(), data.node_count());
        assert_eq!(out.traffic.recovery.site_crashes, 3);
    }

    #[test]
    fn fault_free_supervised_run_matches_fast_path() {
        // The supervision loop with nothing scripted must be a bit-identical drop-in —
        // the property the fault_overhead bench also depends on.
        let (pattern, data) = small_case();
        for dual_filter in [false, true] {
            let base = DistributedConfig {
                sites: 3,
                minimize_query: false,
                dual_filter,
                ..DistributedConfig::default()
            };
            let fast = distributed_strong_simulation(&pattern, &data, &base).unwrap();
            let supervised = distributed_strong_simulation(
                &pattern,
                &data,
                &DistributedConfig {
                    recovery: Some(RecoveryPolicy::default()),
                    ..base
                },
            )
            .unwrap();
            assert_eq!(fast.subgraphs, supervised.subgraphs, "dual={dual_filter}");
            assert_eq!(
                normalized(&fast.traffic),
                normalized(&supervised.traffic),
                "dual={dual_filter}"
            );
            assert_eq!(supervised.traffic.recovery, RecoveryStats::default());
        }
    }

    /// Twin boundary tests for the `Delay(t)` vs `chunk_timeout_ticks` contract:
    /// `t >= timeout` is a timeout **failure** (retried, no delay absorbed), while
    /// `t == timeout - 1` is the largest benign slow-site delay (absorbed in full,
    /// nothing retried). Pinning both sides keeps the `>=` from regressing to `>`.
    #[test]
    fn delay_exactly_at_the_timeout_is_a_timeout_failure() {
        let data = synthetic(&SyntheticConfig {
            nodes: 120,
            alpha: 1.15,
            labels: 8,
            seed: 17,
        });
        let pattern = extract_pattern(&data, 3, 5).expect("pattern extraction succeeds");
        let policy = RecoveryPolicy::default();
        let config = DistributedConfig {
            sites: 3,
            strategy: PartitionStrategy::Range,
            minimize_query: false,
            recovery: Some(policy),
            ..DistributedConfig::default()
        };
        let clean =
            distributed_strong_simulation(&pattern, &data, &config).expect("valid configuration");
        let mut plan = FaultPlan::none();
        plan.delay_chunk(0, 0, 0, policy.chunk_timeout_ticks);
        let out =
            distributed_with_faults(&pattern, &data, &config, &plan).expect("recoverable plan");
        let recovery = &out.traffic.recovery;
        assert_eq!(
            recovery.chunk_timeouts, 1,
            "t == timeout must count as a timeout"
        );
        assert_eq!(
            recovery.delay_ticks, 0,
            "a timed-out attempt's delay is not absorbed as slow-site time"
        );
        assert_eq!(
            recovery.chunk_retries, 1,
            "the failed chunk is retried once"
        );
        assert!(
            out.lost_centers.is_empty(),
            "one failure is within the budget"
        );
        assert_eq!(
            out.subgraphs, clean.subgraphs,
            "the retry restores bit-identity"
        );
    }

    #[test]
    fn delay_one_tick_below_the_timeout_is_benign() {
        let data = synthetic(&SyntheticConfig {
            nodes: 120,
            alpha: 1.15,
            labels: 8,
            seed: 17,
        });
        let pattern = extract_pattern(&data, 3, 5).expect("pattern extraction succeeds");
        let policy = RecoveryPolicy::default();
        let config = DistributedConfig {
            sites: 3,
            strategy: PartitionStrategy::Range,
            minimize_query: false,
            recovery: Some(policy),
            ..DistributedConfig::default()
        };
        let clean =
            distributed_strong_simulation(&pattern, &data, &config).expect("valid configuration");
        let mut plan = FaultPlan::none();
        plan.delay_chunk(0, 0, 0, policy.chunk_timeout_ticks - 1);
        let out =
            distributed_with_faults(&pattern, &data, &config, &plan).expect("recoverable plan");
        let recovery = &out.traffic.recovery;
        assert_eq!(
            recovery.chunk_timeouts, 0,
            "t == timeout - 1 must not time out"
        );
        assert_eq!(
            recovery.delay_ticks,
            policy.chunk_timeout_ticks - 1,
            "the sub-timeout delay is absorbed in full"
        );
        assert_eq!(recovery.chunk_retries, 0);
        assert_eq!(recovery.retry_rounds, 0);
        assert!(out.lost_centers.is_empty());
        assert_eq!(out.subgraphs, clean.subgraphs);
    }
}

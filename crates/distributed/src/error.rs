//! Typed errors for the distributed runtime.
//!
//! Coordinator-path failures used to `panic!` (invalid configurations clamped or
//! aborted, the counted entry point's missing flat graph blew up mid-run); every public
//! entry point now returns [`DistError`] instead, wrapping [`GraphError`] where the
//! failure originates in the graph layer.

use ssim_graph::GraphError;
use std::fmt;

/// Errors raised by the distributed coordinator: invalid configurations, misused entry
/// points, graph-layer failures surfaced through delta application, and coverage loss
/// under a fail-fast recovery policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A graph-layer error (delta validation, construction) surfaced through a
    /// distributed entry point.
    Graph(GraphError),
    /// `DistributedConfig::sites` was zero — there is no site to evaluate anything.
    NoSites,
    /// More sites than data nodes: at least one fragment would be empty, which the
    /// runtime used to clamp silently. Requested explicitly, it is a configuration
    /// mistake and is rejected up front.
    MoreSitesThanNodes {
        /// Requested site count.
        sites: usize,
        /// Nodes in the data graph.
        nodes: usize,
    },
    /// A recovery policy with `chunk_retries == 0` and `allow_degraded == false` can
    /// neither retry a failed chunk nor degrade around it — it promises tolerance it
    /// cannot deliver, so it is rejected instead of failing on the first fault.
    UselessRecoveryPolicy,
    /// A recovery policy with `chunk_timeout_ticks == 0` would time out every chunk,
    /// including instant ones.
    ZeroChunkTimeout,
    /// A non-empty [`crate::fault::FaultPlan`] was supplied without a recovery policy
    /// on the configuration; scripted faults require supervision to be containable.
    FaultPlanNeedsRecovery,
    /// This coordinator path traverses the flat data graph, but the counted entry point
    /// only carries the node count (it serves prepared match-graph-substrate runs).
    FlatGraphRequired,
    /// The prepared incremental state did not carry the `Gm` extraction the
    /// match-graph substrate requires.
    PreparedStateMissingGm,
    /// Chunks were lost past the retry budget and the recovery policy forbids degraded
    /// output (`allow_degraded == false`).
    CoverageLost {
        /// Ball centers whose evaluation was lost.
        lost_balls: usize,
        /// Ball centers the run still covers (`covered + lost == |V|`).
        covered_balls: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Graph(e) => write!(f, "graph error: {e}"),
            DistError::NoSites => write!(f, "a distributed run needs at least one site"),
            DistError::MoreSitesThanNodes { sites, nodes } => write!(
                f,
                "{sites} sites over {nodes} nodes would leave at least one fragment empty"
            ),
            DistError::UselessRecoveryPolicy => write!(
                f,
                "recovery policy with zero retries and degradation disabled can never recover"
            ),
            DistError::ZeroChunkTimeout => {
                write!(f, "a zero chunk timeout would time out every chunk")
            }
            DistError::FaultPlanNeedsRecovery => write!(
                f,
                "a non-empty fault plan requires a recovery policy on the configuration"
            ),
            DistError::FlatGraphRequired => write!(
                f,
                "this coordinator path traverses the flat data graph; the counted entry \
                 point only serves prepared match-graph-substrate runs"
            ),
            DistError::PreparedStateMissingGm => write!(
                f,
                "prepared state must carry Gm on the match-graph substrate"
            ),
            DistError::CoverageLost {
                lost_balls,
                covered_balls,
            } => write!(
                f,
                "{lost_balls} ball centers lost past the retry budget \
                 ({covered_balls} covered) and the policy forbids degraded output"
            ),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DistError {
    fn from(e: GraphError) -> Self {
        DistError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_graph_errors() {
        let e: DistError = GraphError::MissingEdge { from: 1, to: 2 }.into();
        assert!(matches!(e, DistError::Graph(_)));
        assert!(e.to_string().contains("graph error"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_covers_config_variants() {
        assert!(DistError::NoSites.to_string().contains("at least one site"));
        let e = DistError::MoreSitesThanNodes { sites: 9, nodes: 4 };
        assert!(e.to_string().contains("9 sites over 4 nodes"));
        assert!(DistError::UselessRecoveryPolicy
            .to_string()
            .contains("never recover"));
        assert!(DistError::CoverageLost {
            lost_balls: 3,
            covered_balls: 7
        }
        .to_string()
        .contains("3 ball centers lost"));
        assert!(std::error::Error::source(&DistError::NoSites).is_none());
    }
}

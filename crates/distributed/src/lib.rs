//! Distributed strong simulation (Section 4.3 of the paper).
//!
//! The locality of strong simulation — every match lives inside a ball of radius `dQ` —
//! makes it evaluable over a *partitioned* graph with bounded data shipment: a site only has
//! to ship the balls whose centers sit next to a fragment boundary. This crate reproduces
//! the algorithm sketched in the paper:
//!
//! 1. the coordinator broadcasts the pattern `Q` to every site,
//! 2. each site `Mi` evaluates the balls centred at its own nodes; balls that spill into
//!    other fragments require the foreign part of the ball to be shipped (accounted in
//!    [`TrafficStats`]),
//! 3. each site sends its partial result `Θi` back and the coordinator returns the union.
//!
//! The "cluster" is simulated in-process with one thread per site communicating over
//! channels ([`runtime`]); the algorithm and its traffic accounting are exactly what a real
//! deployment would execute, which is all the paper's data-locality claim needs (see the
//! substitution table in DESIGN.md).
//!
//! The runtime is fault-tolerant: the [`fault`] module scripts deterministic site
//! crashes, chunk panics, dropped results and slow-site delays, and a
//! [`fault::RecoveryPolicy`] on the configuration routes the fan-out through a
//! supervising coordinator that retries, reassigns and — when a chunk is lost past the
//! budget — degrades the output with exact coverage accounting instead of panicking.
//! Coordinator-path failures are typed ([`DistError`]) rather than panics.

pub mod error;
pub mod fault;
pub mod incremental;
pub mod partition;
pub mod runtime;
pub mod service;

pub use error::DistError;
pub use fault::{FaultAction, FaultPlan, RecoveryPolicy, RecoveryStats};
pub use incremental::IncrementalDistributed;
pub use partition::{GraphPartition, PartitionStrategy};
pub use runtime::{
    distributed_strong_simulation, distributed_with_faults, distributed_with_prepared,
    distributed_with_prepared_cached, distributed_with_prepared_counted, CoordinatorCache,
    DistributedConfig, DistributedOutput, TrafficStats,
};
pub use service::{DistServiceUpdate, DistributedQueryService};

//! Graph partitioning into `k` fragments.
//!
//! The paper's distributed algorithm is agnostic to how the graph is partitioned ("it is
//! applicable to any G regardless of how G is partitioned and distributed"); two simple
//! strategies are provided so the experiments can show how fragmentation quality affects the
//! shipped-data bound.

use crate::error::DistError;
use ssim_graph::{Graph, NodeId};

/// Strategy used to assign nodes to fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Node `v` goes to fragment `v mod k` — maximally scattered, worst-case boundary size.
    Hash,
    /// Contiguous ranges of node ids — preserves the locality of generators that allocate
    /// related nodes with nearby ids, so fewer balls cross fragments.
    Range,
}

/// Assignment of every node to one of `k` fragments (sites).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPartition {
    site_of: Vec<usize>,
    sites: usize,
}

impl GraphPartition {
    /// Partitions `graph` into `sites` fragments with the given strategy.
    ///
    /// # Panics
    /// Panics when `sites == 0`.
    pub fn new(graph: &Graph, sites: usize, strategy: PartitionStrategy) -> Self {
        Self::from_node_count(graph.node_count(), sites, strategy)
    }

    /// [`GraphPartition::new`] from the node count alone. Both strategies assign sites
    /// by node id, never by adjacency, so the partition is **delta-invariant**: edge
    /// updates cannot move a node to another site — which is why the incremental
    /// coordinator caches one partition across a whole delta stream.
    ///
    /// # Panics
    /// Panics when `sites == 0`.
    pub fn from_node_count(n: usize, sites: usize, strategy: PartitionStrategy) -> Self {
        assert!(sites > 0, "a partition needs at least one site");
        let site_of = match strategy {
            PartitionStrategy::Hash => (0..n).map(|i| i % sites).collect(),
            PartitionStrategy::Range => {
                let chunk = n.div_ceil(sites).max(1);
                (0..n).map(|i| (i / chunk).min(sites - 1)).collect()
            }
        };
        GraphPartition { site_of, sites }
    }

    /// [`GraphPartition::from_node_count`] with the degenerate shapes rejected as typed
    /// errors instead of a panic (`sites == 0`) or a silent mostly-empty partition
    /// (`sites > n`). The runtime validates configurations through this; the panicking
    /// constructor remains for low-level callers that have already checked.
    pub fn try_from_node_count(
        n: usize,
        sites: usize,
        strategy: PartitionStrategy,
    ) -> Result<Self, DistError> {
        if sites == 0 {
            return Err(DistError::NoSites);
        }
        if sites > n {
            return Err(DistError::MoreSitesThanNodes { sites, nodes: n });
        }
        Ok(Self::from_node_count(n, sites, strategy))
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The site holding `node`.
    pub fn site_of(&self, node: NodeId) -> usize {
        self.site_of[node.index()]
    }

    /// Nodes owned by `site`, in ascending order.
    pub fn nodes_of(&self, site: usize) -> Vec<NodeId> {
        self.site_of
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == site)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Returns `true` when `node` has at least one neighbour stored on a different site —
    /// exactly the nodes whose balls may have to be shipped.
    pub fn is_border_node(&self, graph: &Graph, node: NodeId) -> bool {
        self.is_border_node_translated(graph, node, |v| v)
    }

    /// [`GraphPartition::is_border_node`] with node ids translated through `owner_id`
    /// before the ownership lookup. This is the form the match-graph ball substrate
    /// needs: `graph` is then the extracted `Gm`, whose inner ids translate back to the
    /// partitioned graph's ids for `site_of`.
    pub fn is_border_node_translated(
        &self,
        graph: &Graph,
        node: NodeId,
        owner_id: impl Fn(NodeId) -> NodeId,
    ) -> bool {
        let home = self.site_of(owner_id(node));
        graph
            .out_neighbors(node)
            .chain(graph.in_neighbors(node))
            .any(|w| self.site_of(owner_id(w)) != home)
    }

    /// Number of edges whose endpoints live on different sites (the edge cut).
    pub fn edge_cut(&self, graph: &Graph) -> usize {
        graph
            .edges()
            .filter(|&(s, t)| self.site_of(s) != self.site_of(t))
            .count()
    }

    /// Sizes of all fragments.
    pub fn fragment_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.sites];
        for &s in &self.site_of {
            sizes[s] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::Label;

    fn chain(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(vec![Label(0); n], &edges).unwrap()
    }

    #[test]
    fn hash_partition_balances_nodes() {
        let g = chain(10);
        let p = GraphPartition::new(&g, 3, PartitionStrategy::Hash);
        assert_eq!(p.sites(), 3);
        assert_eq!(p.fragment_sizes().iter().sum::<usize>(), 10);
        assert!(p.fragment_sizes().iter().all(|&s| (3..=4).contains(&s)));
        assert_eq!(p.site_of(NodeId(4)), 1);
    }

    #[test]
    fn range_partition_is_contiguous_and_has_smaller_cut() {
        let g = chain(30);
        let hash = GraphPartition::new(&g, 3, PartitionStrategy::Hash);
        let range = GraphPartition::new(&g, 3, PartitionStrategy::Range);
        assert!(range.edge_cut(&g) < hash.edge_cut(&g));
        // A chain cut into 3 contiguous ranges has exactly 2 cross edges.
        assert_eq!(range.edge_cut(&g), 2);
    }

    #[test]
    fn border_nodes_touch_other_fragments() {
        let g = chain(10);
        let p = GraphPartition::new(&g, 2, PartitionStrategy::Range);
        // Nodes 4 and 5 straddle the boundary of a 2-way range partition.
        assert!(p.is_border_node(&g, NodeId(4)));
        assert!(p.is_border_node(&g, NodeId(5)));
        assert!(!p.is_border_node(&g, NodeId(0)));
    }

    #[test]
    fn single_site_has_no_cut() {
        let g = chain(5);
        let p = GraphPartition::new(&g, 1, PartitionStrategy::Hash);
        assert_eq!(p.edge_cut(&g), 0);
        assert!(g.nodes().all(|v| !p.is_border_node(&g, v)));
        assert_eq!(p.nodes_of(0).len(), 5);
    }

    #[test]
    fn more_sites_than_nodes() {
        let g = chain(3);
        let p = GraphPartition::new(&g, 8, PartitionStrategy::Range);
        assert_eq!(p.fragment_sizes().iter().sum::<usize>(), 3);
        assert_eq!(p.sites(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        let g = chain(3);
        let _ = GraphPartition::new(&g, 0, PartitionStrategy::Hash);
    }

    #[test]
    fn try_constructor_rejects_degenerate_shapes() {
        assert_eq!(
            GraphPartition::try_from_node_count(3, 0, PartitionStrategy::Hash).unwrap_err(),
            DistError::NoSites
        );
        assert_eq!(
            GraphPartition::try_from_node_count(3, 8, PartitionStrategy::Range).unwrap_err(),
            DistError::MoreSitesThanNodes { sites: 8, nodes: 3 }
        );
        let p = GraphPartition::try_from_node_count(10, 3, PartitionStrategy::Range)
            .expect("valid shape");
        assert_eq!(p.sites(), 3);
        assert_eq!(p.fragment_sizes().iter().sum::<usize>(), 10);
    }
}

//! Hand-crafted pattern/data pairs from the paper's figures.
//!
//! These small graphs reproduce the running examples used throughout the paper: the
//! social-matching scenario of Fig. 1 (Q1 / G1), the book / mutual-recommendation / citation
//! examples of Fig. 2 (Q2–Q4 with G2–G4), and the two real-life query shapes of Fig. 7
//! (QA over Amazon-like data, QY over YouTube-like data). They back the examples and the
//! qualitative tests, and give readers concrete objects matching the prose of the paper.

use ssim_graph::{Graph, GraphBuilder, LabelInterner, NodeId, Pattern};

/// A named pattern/data pair from a figure of the paper.
#[derive(Debug, Clone)]
pub struct FigureExample {
    /// Figure identifier, e.g. `"fig1"`.
    pub name: &'static str,
    /// The pattern graph.
    pub pattern: Pattern,
    /// The data graph.
    pub data: Graph,
    /// Label interner shared by pattern and data (for pretty-printing).
    pub interner: LabelInterner,
    /// The data nodes the paper singles out as the *intended* matches (e.g. `Bio4`).
    pub expected_matches: Vec<NodeId>,
}

fn build(
    name: &'static str,
    pattern_nodes: &[&str],
    pattern_edges: &[(u32, u32)],
    data_nodes: &[&str],
    data_edges: &[(u32, u32)],
    expected: &[u32],
) -> FigureExample {
    let mut interner = LabelInterner::new();
    let pattern = {
        let mut b = GraphBuilder::new();
        for label in pattern_nodes {
            b.add_labeled_node(interner.intern(label));
        }
        for &(s, t) in pattern_edges {
            b.add_edge(NodeId(s), NodeId(t));
        }
        Pattern::new(b.build()).expect("figure patterns are connected")
    };
    let data = {
        let mut b = GraphBuilder::new();
        for label in data_nodes {
            b.add_labeled_node(interner.intern(label));
        }
        for &(s, t) in data_edges {
            b.add_edge(NodeId(s), NodeId(t));
        }
        b.build()
    };
    FigureExample {
        name,
        pattern,
        data,
        interner,
        expected_matches: expected.iter().map(|&i| NodeId(i)).collect(),
    }
}

/// Fig. 1: the expertise-recommendation network. Pattern Q1 asks for a biologist
/// recommended by an HR person, an SE and a DM, with the SE also recommended by HR and the
/// DM in a mutual-recommendation cycle with an AI expert. Only `Bio4` (data node 16)
/// qualifies.
pub fn figure1() -> FigureExample {
    // Pattern nodes: 0 HR, 1 SE, 2 Bio, 3 DM, 4 AI.
    let pattern_nodes = ["HR", "SE", "Bio", "DM", "AI"];
    let pattern_edges = [(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 3)];
    // Data: component A (HR1 -> Bio1), component B (SE1 -> Bio2), component C (the long
    // AI/DM cycle feeding Bio3), component D (the good one around Bio4).
    let data_nodes = [
        "HR", "Bio", // 0 HR1, 1 Bio1
        "SE", "Bio", // 2 SE1, 3 Bio2
        "Bio", // 4 Bio3
        "AI", "DM", "AI", "DM", "AI", "DM", // 5..=10: AI1,DM1,AI2,DM2,AI3,DM3 (long cycle)
        "HR", "SE", "Bio", // 11 HR2, 12 SE2, 13 Bio4
        "DM", "DM", "AI", "AI", // 14 DM'1, 15 DM'2, 16 AI'1, 17 AI'2
    ];
    let data_edges = [
        (0, 1), // HR1 -> Bio1
        (2, 3), // SE1 -> Bio2
        (6, 4),
        (8, 4),
        (10, 4), // DMi -> Bio3
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 10),
        (10, 5), // AI1->DM1->AI2->DM2->AI3->DM3->AI1
        (11, 12),
        (11, 13),
        (12, 13), // HR2 -> SE2, HR2 -> Bio4, SE2 -> Bio4
        (14, 13),
        (15, 13), // DM'1 -> Bio4, DM'2 -> Bio4
        // The DM'/AI' nodes form a directed 4-cycle DM'1 -> AI'1 -> DM'2 -> AI'2 -> DM'1:
        // it dual-simulates the DM <-> AI 2-cycle of Q1 but is not isomorphic to it, which is
        // why subgraph isomorphism finds no match in G1 (Example 2(1)).
        (14, 16),
        (16, 15),
        (15, 17),
        (17, 14),
    ];
    build(
        "fig1",
        &pattern_nodes,
        &pattern_edges,
        &data_nodes,
        &data_edges,
        &[13],
    )
}

/// Fig. 2, Q2/G2: a book recommended by both students (ST) and teachers (TE). `book2`
/// (data node 3) is the intended match; `book1` is recommended by a student only.
pub fn figure2_books() -> FigureExample {
    build(
        "fig2-q2",
        &["ST", "TE", "book"],
        &[(0, 2), (1, 2)],
        &["ST", "TE", "book", "book"],
        &[(0, 2), (0, 3), (1, 3)],
        &[3],
    )
}

/// Fig. 2, Q3/G3: people who recommend each other. `P1`, `P2`, `P3` form mutual
/// recommendations; `P4` only recommends and is never recommended back.
pub fn figure3_mutual() -> FigureExample {
    build(
        "fig2-q3",
        &["P", "P"],
        &[(0, 1), (1, 0)],
        &["P", "P", "P", "P"],
        &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 0)],
        &[0, 1, 2],
    )
}

/// Fig. 2, Q4/G4: papers on social networks (SN) cited by database papers (DB) which in turn
/// cite graph-theory papers. `SN1`, `SN2` are the intended matches; `SN3`, `SN4` are cited by
/// database papers that do not cite graph theory.
pub fn figure4_citations() -> FigureExample {
    build(
        "fig2-q4",
        &["DB", "SN", "graph"],
        &[(0, 1), (0, 2)],
        &[
            "DB", "DB", // 0, 1: good database papers
            "SN", "SN", // 2, 3: SN1, SN2
            "graph", "graph", // 4, 5
            "DB", "SN", "SN", // 6: DB that cites no graph paper; 7, 8: SN3, SN4
        ],
        &[(0, 2), (0, 4), (1, 3), (1, 5), (6, 7), (6, 8)],
        &[2, 3],
    )
}

/// Fig. 7(a)-style Amazon pattern QA: a "Parenting & Families" book co-purchased with both
/// "Children's Books" and "Home & Garden" books, and co-purchased with a
/// "Health, Mind & Body" book in both directions.
pub fn pattern_qa() -> (Pattern, LabelInterner) {
    let mut interner = LabelInterner::new();
    let mut b = GraphBuilder::new();
    let parenting = b.add_labeled_node(interner.intern("Parenting&Families"));
    let children = b.add_labeled_node(interner.intern("Children'sBooks"));
    let home = b.add_labeled_node(interner.intern("Home&Garden"));
    let health = b.add_labeled_node(interner.intern("Health,Mind&Body"));
    b.add_edge(parenting, children);
    b.add_edge(parenting, home);
    b.add_edge(parenting, health);
    b.add_edge(health, parenting);
    (Pattern::new(b.build()).expect("QA is connected"), interner)
}

/// Fig. 7(b)-style YouTube pattern QY: an "Entertainment" video related to "Film & Animation"
/// and "Music" videos, with a "Sports" video related to the same "Film & Animation" and
/// "Music" videos.
pub fn pattern_qy() -> (Pattern, LabelInterner) {
    let mut interner = LabelInterner::new();
    let mut b = GraphBuilder::new();
    let entertainment = b.add_labeled_node(interner.intern("Entertainment"));
    let film = b.add_labeled_node(interner.intern("Film&Animation"));
    let music = b.add_labeled_node(interner.intern("Music"));
    let sports = b.add_labeled_node(interner.intern("Sports"));
    b.add_edge(entertainment, film);
    b.add_edge(entertainment, music);
    b.add_edge(sports, film);
    b.add_edge(sports, music);
    (Pattern::new(b.build()).expect("QY is connected"), interner)
}

/// All figure examples, for data-driven tests.
pub fn all_figures() -> Vec<FigureExample> {
    vec![
        figure1(),
        figure2_books(),
        figure3_mutual(),
        figure4_citations(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let f = figure1();
        assert_eq!(f.pattern.node_count(), 5);
        assert_eq!(f.pattern.diameter(), 3);
        assert_eq!(f.data.node_count(), 18);
        assert_eq!(f.expected_matches, vec![NodeId(13)]);
        assert_eq!(f.interner.name(f.data.label(NodeId(13))), Some("Bio"));
        // G1 is disconnected (four components).
        assert!(!ssim_graph::components::is_connected(&f.data));
    }

    #[test]
    fn figure2_books_shape() {
        let f = figure2_books();
        assert_eq!(f.pattern.node_count(), 3);
        assert_eq!(f.data.node_count(), 4);
        assert_eq!(f.expected_matches, vec![NodeId(3)]);
    }

    #[test]
    fn figure3_mutual_shape() {
        let f = figure3_mutual();
        assert_eq!(f.pattern.edge_count(), 2);
        assert!(ssim_graph::cycles::has_directed_cycle(f.pattern.graph()));
        assert_eq!(f.expected_matches.len(), 3);
    }

    #[test]
    fn figure4_citations_shape() {
        let f = figure4_citations();
        assert_eq!(f.pattern.node_count(), 3);
        assert_eq!(f.data.node_count(), 9);
        assert_eq!(f.expected_matches, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn qa_and_qy_patterns_are_connected() {
        let (qa, qa_labels) = pattern_qa();
        assert_eq!(qa.node_count(), 4);
        assert!(qa_labels.get("Home&Garden").is_some());
        assert!(
            ssim_graph::cycles::has_directed_cycle(qa.graph()),
            "QA has the 2-cycle"
        );
        let (qy, _) = pattern_qy();
        assert_eq!(qy.node_count(), 4);
        assert_eq!(qy.diameter(), 2);
    }

    #[test]
    fn all_figures_are_consistent() {
        for f in all_figures() {
            assert!(f.pattern.node_count() >= 2, "{}", f.name);
            assert!(f.data.node_count() >= f.pattern.node_count(), "{}", f.name);
            for m in &f.expected_matches {
                assert!(
                    f.data.contains_node(*m),
                    "{}: expected match out of range",
                    f.name
                );
            }
        }
    }
}

//! Amazon-like and YouTube-like graph generators.
//!
//! The paper evaluates on two real networks:
//!
//! * **Amazon**: 548,552 product nodes, 1,788,725 co-purchase edges (average out-degree
//!   ≈ 3.3), where an edge `x → y` means "people who buy `x` often buy `y`",
//! * **YouTube**: 155,513 video nodes, 3,110,120 related-video edges (average out-degree
//!   ≈ 20).
//!
//! Those datasets cannot be redistributed with this repository, so this module generates
//! graphs with the same structural signature at a configurable scale: preferential-attachment
//! out-edges (heavy-tailed in-degree, like co-purchase and related-video links), a skewed
//! category-label distribution over ~200 labels, and locally clustered edges (a fraction of
//! edges go to "nearby" nodes, mimicking co-purchases within a product category). The
//! evaluation only depends on these statistics — size, density, label skew, local clustering
//! — so the substitution preserves the qualitative behaviour (see DESIGN.md).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssim_graph::{Graph, GraphBuilder, Label, NodeId};

/// Parameters of the real-world-like generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealWorldConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Average out-degree (Amazon ≈ 3.3, YouTube ≈ 20).
    pub avg_out_degree: f64,
    /// Number of category labels (the paper fixes `l = 200`).
    pub labels: usize,
    /// Zipf-like skew of the label distribution (0 = uniform, 1 ≈ natural category skew).
    pub label_skew: f64,
    /// Fraction of edges rewired to nearby node ids, mimicking within-category clustering.
    pub locality: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RealWorldConfig {
    /// Amazon-like defaults at the given scale.
    pub fn amazon(nodes: usize, seed: u64) -> Self {
        RealWorldConfig {
            nodes,
            avg_out_degree: 3.3,
            labels: 200,
            label_skew: 0.8,
            locality: 0.5,
            seed,
        }
    }

    /// YouTube-like defaults at the given scale.
    pub fn youtube(nodes: usize, seed: u64) -> Self {
        RealWorldConfig {
            nodes,
            avg_out_degree: 20.0,
            labels: 200,
            label_skew: 0.6,
            locality: 0.3,
            seed,
        }
    }
}

/// Generates an Amazon-like co-purchase graph with `nodes` nodes.
pub fn amazon_like(nodes: usize, seed: u64) -> Graph {
    generate(&RealWorldConfig::amazon(nodes, seed))
}

/// Generates a YouTube-like related-video graph with `nodes` nodes.
pub fn youtube_like(nodes: usize, seed: u64) -> Graph {
    generate(&RealWorldConfig::youtube(nodes, seed))
}

/// Generates a graph from an explicit [`RealWorldConfig`].
pub fn generate(config: &RealWorldConfig) -> Graph {
    let n = config.nodes;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::with_capacity(n, (n as f64 * config.avg_out_degree) as usize);

    // Skewed label assignment: label k gets probability ∝ 1 / (k + 1)^skew.
    let label_count = config.labels.max(1);
    let weights: Vec<f64> = (0..label_count)
        .map(|k| 1.0 / ((k + 1) as f64).powf(config.label_skew))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let mut x = rng.gen::<f64>() * total_weight;
        let mut chosen = label_count - 1;
        for (k, w) in weights.iter().enumerate() {
            if x < *w {
                chosen = k;
                break;
            }
            x -= w;
        }
        labels.push(Label(chosen as u32));
        builder.add_labeled_node(Label(chosen as u32));
    }
    if n == 0 {
        return builder.build();
    }

    // Out-edges: a Poisson-ish number per node around the average; targets chosen either
    // locally (within a window of node ids, mimicking same-category co-purchases) or by
    // preferential attachment over previously used targets.
    let mut popular: Vec<NodeId> = Vec::new();
    let window = (n / 50).max(4);
    for source in 0..n {
        // Geometric-like degree: at least 1, expected avg_out_degree.
        let mut degree = 1usize;
        while rng.gen::<f64>() < 1.0 - 1.0 / config.avg_out_degree.max(1.0) {
            degree += 1;
            if degree > (config.avg_out_degree * 8.0) as usize + 1 {
                break;
            }
        }
        for _ in 0..degree {
            let target = if rng.gen::<f64>() < config.locality || popular.is_empty() {
                // Local edge: a node within the id window (wrap-around).
                let offset = rng.gen_range(1..=window);
                let forward = rng.gen_bool(0.5);
                let t = if forward {
                    (source + offset) % n
                } else {
                    (source + n - offset % n) % n
                };
                NodeId(t as u32)
            } else {
                // Preferential attachment: pick an endpoint of a previous edge.
                popular[rng.gen_range(0..popular.len())]
            };
            if target.index() != source {
                builder.add_edge(NodeId(source as u32), target);
                popular.push(target);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::metrics::degree_stats;

    #[test]
    fn amazon_like_matches_the_target_density() {
        let g = amazon_like(2_000, 3);
        assert_eq!(g.node_count(), 2_000);
        let stats = degree_stats(&g);
        assert!(
            stats.mean_out > 2.0 && stats.mean_out < 5.0,
            "amazon-like mean out-degree {} outside the expected band",
            stats.mean_out
        );
    }

    #[test]
    fn youtube_like_is_denser_than_amazon_like() {
        let a = amazon_like(1_500, 11);
        let y = youtube_like(1_500, 11);
        let (sa, sy) = (degree_stats(&a), degree_stats(&y));
        assert!(
            sy.mean_out > 2.0 * sa.mean_out,
            "youtube-like ({}) should be much denser than amazon-like ({})",
            sy.mean_out,
            sa.mean_out
        );
    }

    #[test]
    fn label_distribution_is_skewed() {
        let g = amazon_like(3_000, 5);
        // The most frequent label should cover well above the uniform share 1/200.
        let mut counts = std::collections::HashMap::new();
        for v in g.nodes() {
            *counts.entry(g.label(v)).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(
            max as f64 > 3_000.0 / 200.0 * 3.0,
            "label skew too weak: max count {max}"
        );
        assert!(
            g.distinct_label_count() > 20,
            "expected many categories to appear"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(amazon_like(800, 9), amazon_like(800, 9));
        assert_ne!(amazon_like(800, 9), amazon_like(800, 10));
        assert_eq!(youtube_like(400, 1), youtube_like(400, 1));
    }

    #[test]
    fn no_self_loops_and_valid_targets() {
        let g = youtube_like(600, 2);
        for (s, t) in g.edges() {
            assert_ne!(s, t, "real-like generators do not emit self-loops");
            assert!(g.contains_node(t));
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = generate(&RealWorldConfig::amazon(0, 1));
        assert_eq!(empty.node_count(), 0);
        let tiny = generate(&RealWorldConfig::youtube(2, 1));
        assert_eq!(tiny.node_count(), 2);
    }

    #[test]
    fn presets_differ_in_density_not_labels() {
        let a = RealWorldConfig::amazon(100, 0);
        let y = RealWorldConfig::youtube(100, 0);
        assert_eq!(a.labels, y.labels);
        assert!(y.avg_out_degree > a.avg_out_degree);
    }
}

//! Pattern-graph workload generators.
//!
//! The evaluation varies the number of pattern nodes `|Vq|` (2–20) and the pattern density
//! `αq` (1.05–1.35). Two generation strategies are provided:
//!
//! * [`random_pattern`] — a standalone random connected pattern over a given label alphabet,
//! * [`extract_pattern`] — a pattern carved out of a data graph by sampling a connected
//!   region and keeping its induced edges. Extracted patterns are guaranteed to have at
//!   least one exact (subgraph-isomorphic) match in the data graph, which keeps the
//!   closeness metric of Figures 7(c)–7(h) meaningful.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssim_graph::{Graph, GraphBuilder, Label, NodeId, Pattern};

/// Parameters for [`random_pattern`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternGenConfig {
    /// Number of pattern nodes `|Vq|`.
    pub nodes: usize,
    /// Density exponent `αq`: the pattern has about `⌊|Vq|^αq⌋` edges.
    pub alpha: f64,
    /// Size of the label alphabet to draw from.
    pub labels: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PatternGenConfig {
    fn default() -> Self {
        PatternGenConfig {
            nodes: 10,
            alpha: 1.2,
            labels: 200,
            seed: 7,
        }
    }
}

/// Generates a random **connected** pattern: a random spanning tree over `nodes` nodes plus
/// extra random edges up to the `⌊nodes^αq⌋` target, with labels drawn uniformly from the
/// alphabet.
pub fn random_pattern(config: &PatternGenConfig) -> Pattern {
    assert!(config.nodes >= 1, "patterns must have at least one node");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n = config.nodes;
    let label_count = config.labels.max(1) as u32;
    let mut builder = GraphBuilder::with_capacity(n, n * 2);
    for _ in 0..n {
        builder.add_labeled_node(Label(rng.gen_range(0..label_count)));
    }
    // Spanning tree: node i connects to a random earlier node, random orientation.
    for i in 1..n {
        let other = rng.gen_range(0..i);
        if rng.gen_bool(0.5) {
            builder.add_edge(NodeId(other as u32), NodeId(i as u32));
        } else {
            builder.add_edge(NodeId(i as u32), NodeId(other as u32));
        }
    }
    let target = (n as f64).powf(config.alpha).floor() as usize;
    let mut extra = target.saturating_sub(n.saturating_sub(1));
    let mut guard = 0usize;
    while extra > 0 && guard < target * 10 + 20 && n > 1 {
        guard += 1;
        let s = rng.gen_range(0..n) as u32;
        let t = rng.gen_range(0..n) as u32;
        if s != t {
            builder.add_edge(NodeId(s), NodeId(t));
            extra -= 1;
        }
    }
    Pattern::new(builder.build()).expect("generated pattern is connected by construction")
}

/// Extracts a connected pattern of `size` nodes from `data` by breadth-first sampling around
/// a random seed node, keeping all induced edges. Returns `None` when the data graph is
/// empty or no connected region of the requested size exists around any sampled seed.
pub fn extract_pattern(data: &Graph, size: usize, seed: u64) -> Option<Pattern> {
    if data.node_count() == 0 || size == 0 {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // Try a handful of random seeds, preferring larger regions.
    let attempts = 16.min(data.node_count());
    let mut best: Option<Vec<NodeId>> = None;
    for _ in 0..attempts {
        let start = NodeId(rng.gen_range(0..data.node_count()) as u32);
        let mut selected = vec![start];
        let mut in_sel = ssim_graph::BitSet::new(data.node_count());
        in_sel.insert(start.index());
        let mut frontier = 0usize;
        while selected.len() < size && frontier < selected.len() {
            let current = selected[frontier];
            frontier += 1;
            let mut neighbors: Vec<NodeId> = data
                .out_neighbors(current)
                .chain(data.in_neighbors(current))
                .collect();
            // Shuffle deterministically for workload diversity.
            for i in (1..neighbors.len()).rev() {
                let j = rng.gen_range(0..=i);
                neighbors.swap(i, j);
            }
            for v in neighbors {
                if selected.len() >= size {
                    break;
                }
                if in_sel.insert(v.index()) {
                    selected.push(v);
                }
            }
        }
        if selected.len() == size {
            best = Some(selected);
            break;
        }
        if best.as_ref().is_none_or(|b| b.len() < selected.len()) {
            best = Some(selected);
        }
    }
    let selected = best?;
    let (sub, _) = data.induced_subgraph(&selected);
    // The induced subgraph of a BFS-connected sample may still be disconnected in rare cases
    // (direction-agnostic sampling always keeps it connected, but guard anyway).
    Pattern::new(sub).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{synthetic, SyntheticConfig};

    #[test]
    fn random_pattern_is_connected_and_sized() {
        for seed in 0..10 {
            let config = PatternGenConfig {
                nodes: 8,
                alpha: 1.2,
                labels: 20,
                seed,
            };
            let p = random_pattern(&config);
            assert_eq!(p.node_count(), 8);
            assert!(
                p.edge_count() >= 7,
                "a spanning tree has at least n-1 edges"
            );
            assert!(ssim_graph::components::is_connected(p.graph()));
        }
    }

    #[test]
    fn random_pattern_density_scales_with_alpha() {
        let sparse = random_pattern(&PatternGenConfig {
            nodes: 12,
            alpha: 1.05,
            labels: 10,
            seed: 3,
        });
        let dense = random_pattern(&PatternGenConfig {
            nodes: 12,
            alpha: 1.35,
            labels: 10,
            seed: 3,
        });
        assert!(dense.edge_count() >= sparse.edge_count());
    }

    #[test]
    fn random_pattern_single_node() {
        let p = random_pattern(&PatternGenConfig {
            nodes: 1,
            alpha: 1.2,
            labels: 5,
            seed: 0,
        });
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.diameter(), 0);
    }

    #[test]
    fn random_pattern_is_deterministic() {
        let a = random_pattern(&PatternGenConfig::default());
        let b = random_pattern(&PatternGenConfig::default());
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn extracted_pattern_nodes_come_from_the_data_graph() {
        let data = synthetic(&SyntheticConfig {
            nodes: 300,
            alpha: 1.2,
            labels: 20,
            seed: 5,
        });
        let p = extract_pattern(&data, 6, 11).expect("extraction succeeds on a synthetic graph");
        assert!(p.node_count() <= 6);
        assert!(p.node_count() >= 2);
        assert!(ssim_graph::components::is_connected(p.graph()));
        // Every pattern label must occur in the data graph.
        for u in p.nodes() {
            assert!(!data.nodes_with_label(p.label(u)).is_empty());
        }
    }

    #[test]
    fn extraction_from_empty_graph_fails() {
        let empty = Graph::from_edges(vec![], &[]).unwrap();
        assert!(extract_pattern(&empty, 4, 0).is_none());
        let data = synthetic(&SyntheticConfig {
            nodes: 50,
            alpha: 1.1,
            labels: 5,
            seed: 1,
        });
        assert!(extract_pattern(&data, 0, 0).is_none());
    }

    #[test]
    fn extraction_is_deterministic() {
        let data = synthetic(&SyntheticConfig {
            nodes: 200,
            alpha: 1.2,
            labels: 10,
            seed: 2,
        });
        let a = extract_pattern(&data, 5, 77).unwrap();
        let b = extract_pattern(&data, 5, 77).unwrap();
        assert_eq!(a.graph(), b.graph());
    }
}

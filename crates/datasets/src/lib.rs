//! Workload generators for the strong-simulation evaluation.
//!
//! The paper's experiments (Section 5) run on two real-life graphs — the Amazon product
//! co-purchase network and a YouTube related-video network — and on synthetic graphs
//! produced by a generator controlled by `(n, α, l)`: `n` nodes, `n^α` edges and `l` node
//! labels (`l = 200`, `α = 1.2` by default).
//!
//! The real datasets are not redistributable here, so this crate provides *statistically
//! similar* generators (see the substitution table in DESIGN.md):
//!
//! * [`synthetic::synthetic`] — the `(n, α, l)` generator, reimplemented directly,
//! * [`reallike::amazon_like`] — sparse co-purchase-style graphs (average out-degree ≈ 3.3,
//!   category labels with a skewed distribution),
//! * [`reallike::youtube_like`] — denser related-video-style graphs (average out-degree ≈ 20),
//! * [`patterns`] — pattern workloads: random connected patterns of a given size and
//!   density, patterns extracted from a data graph (guaranteeing at least one exact match),
//!   and the hand-crafted patterns of the paper's figures (Q1–Q4, QA, QY).
//!
//! Every generator is deterministic given its seed, so experiments are reproducible.

pub mod paper;
pub mod patterns;
pub mod reallike;
pub mod synthetic;

pub use patterns::{extract_pattern, random_pattern, PatternGenConfig};
pub use reallike::{amazon_like, youtube_like, RealWorldConfig};
pub use synthetic::{synthetic, SyntheticConfig};

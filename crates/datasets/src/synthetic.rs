//! The `(n, α, l)` synthetic generator of the paper.
//!
//! "It is controlled by three parameters: the number `n` of nodes, the number `n^α` of
//! edges, and the number `l` of node labels. Given `n`, `α`, and `l`, the generator produces
//! a graph with `n` nodes, `n^α` edges, and the nodes are labeled from a set of `l` labels."
//! The defaults used throughout the evaluation are `l = 200` and `α = 1.2`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssim_graph::{Graph, GraphBuilder, Label, NodeId};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Density exponent `α`: the graph has `⌊n^α⌋` directed edges.
    pub alpha: f64,
    /// Number of distinct labels `l`.
    pub labels: usize,
    /// RNG seed; the same configuration and seed always produce the same graph.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    /// The paper's defaults: `α = 1.2`, `l = 200`, with a modest node count.
    fn default() -> Self {
        SyntheticConfig {
            nodes: 10_000,
            alpha: 1.2,
            labels: 200,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// Creates a configuration with the paper's default `α` and `l`.
    pub fn with_nodes(nodes: usize, seed: u64) -> Self {
        SyntheticConfig {
            nodes,
            seed,
            ..Default::default()
        }
    }

    /// Number of edges `⌊n^α⌋` this configuration asks for.
    pub fn edge_target(&self) -> usize {
        if self.nodes == 0 {
            return 0;
        }
        (self.nodes as f64).powf(self.alpha).floor() as usize
    }
}

/// Generates a synthetic graph as described in Section 5 of the paper.
///
/// Edges connect uniformly random node pairs (self-loops allowed, parallel duplicates
/// retried a bounded number of times), and labels are drawn uniformly from `0..l`.
pub fn synthetic(config: &SyntheticConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n = config.nodes;
    let mut builder = GraphBuilder::with_capacity(n, config.edge_target());
    let label_count = config.labels.max(1) as u32;
    for _ in 0..n {
        builder.add_labeled_node(Label(rng.gen_range(0..label_count)));
    }
    if n == 0 {
        return builder.build();
    }
    let target = config.edge_target();
    let mut added = 0usize;
    let mut attempts = 0usize;
    // Parallel edges are deduplicated at build time; retry a few times per edge so the final
    // count stays close to the target even for dense configurations.
    let max_attempts = target.saturating_mul(4).max(16);
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    while added < target && attempts < max_attempts {
        attempts += 1;
        let s = rng.gen_range(0..n) as u32;
        let t = rng.gen_range(0..n) as u32;
        if seen.insert((s, t)) {
            builder.add_edge(NodeId(s), NodeId(t));
            added += 1;
        }
    }
    builder.build()
}

/// A *selective* workload: a sparse matchable chain woven through a thick unmatchable
/// mesh, shared by the `selective-labels` bench row and the `gm_substrate_equivalence`
/// regressions so the benched shape and the tested shape stay the same construction.
///
/// Every `stride`-th node carries one of `chain_labels` labels in cyclic order and is
/// linked to the next matchable node; everything else is an unmatchable filler (label 9,
/// outside the chain alphabet) meshed with edges to the next three nodes. The returned
/// pattern is the `chain_labels`-long label path, so after global dual filtering `Gm`
/// holds only the chain — `1/stride` of `|V|` — and, because consecutive matchable nodes
/// are directly linked, the chain's `Gm` distances equal its data-graph distances (the
/// match-graph ball substrate is bit-identical to full-graph balls here, not just faster).
///
/// # Panics
/// Panics when `chain_labels` is 0 or not below the filler label 9.
pub fn selective_labels(
    nodes: u32,
    stride: u32,
    chain_labels: u32,
) -> (Graph, ssim_graph::Pattern) {
    assert!(
        (1..9).contains(&chain_labels),
        "chain labels must be 1..9 (9 is the filler label)"
    );
    let stride = stride.max(1);
    let labels: Vec<Label> = (0..nodes)
        .map(|i| {
            if i % stride == 0 {
                Label((i / stride) % chain_labels)
            } else {
                Label(9)
            }
        })
        .collect();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..nodes {
        for d in 1..=3u32 {
            if i + d < nodes {
                edges.push((i, i + d));
            }
        }
        if i % stride == 0 && i + stride < nodes {
            edges.push((i, i + stride));
        }
    }
    let data = Graph::from_edges(labels, &edges).expect("endpoints in range by construction");
    let pattern_labels: Vec<Label> = (0..chain_labels).map(Label).collect();
    let pattern_edges: Vec<(u32, u32)> = (0..chain_labels.saturating_sub(1))
        .map(|i| (i, i + 1))
        .collect();
    let pattern = ssim_graph::Pattern::from_edges(pattern_labels, &pattern_edges)
        .expect("a label path is a valid connected pattern");
    (data, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_node_and_edge_counts() {
        let config = SyntheticConfig {
            nodes: 500,
            alpha: 1.2,
            labels: 50,
            seed: 7,
        };
        let g = synthetic(&config);
        assert_eq!(g.node_count(), 500);
        let target = config.edge_target();
        assert!(
            g.edge_count() > target * 9 / 10,
            "got {} edges, target {target}",
            g.edge_count()
        );
        assert!(g.edge_count() <= target);
    }

    #[test]
    fn labels_come_from_the_requested_alphabet() {
        let config = SyntheticConfig {
            nodes: 200,
            alpha: 1.1,
            labels: 10,
            seed: 1,
        };
        let g = synthetic(&config);
        assert!(g.nodes().all(|v| g.label(v).0 < 10));
        assert!(g.distinct_label_count() <= 10);
        // With 200 nodes and 10 labels, all labels almost surely appear.
        assert!(g.distinct_label_count() >= 8);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let config = SyntheticConfig {
            nodes: 300,
            alpha: 1.15,
            labels: 20,
            seed: 99,
        };
        let a = synthetic(&config);
        let b = synthetic(&config);
        assert_eq!(a, b);
        let c = synthetic(&SyntheticConfig {
            seed: 100,
            ..config
        });
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_configurations() {
        let empty = synthetic(&SyntheticConfig {
            nodes: 0,
            alpha: 1.2,
            labels: 5,
            seed: 0,
        });
        assert_eq!(empty.node_count(), 0);
        let single = synthetic(&SyntheticConfig {
            nodes: 1,
            alpha: 1.2,
            labels: 1,
            seed: 0,
        });
        assert_eq!(single.node_count(), 1);
        assert!(single.edge_count() <= 1);
    }

    #[test]
    fn default_config_matches_the_paper() {
        let d = SyntheticConfig::default();
        assert_eq!(d.labels, 200);
        assert!((d.alpha - 1.2).abs() < 1e-12);
        let with_nodes = SyntheticConfig::with_nodes(1234, 5);
        assert_eq!(with_nodes.nodes, 1234);
        assert_eq!(with_nodes.labels, 200);
    }

    #[test]
    fn edge_target_computation() {
        let c = SyntheticConfig {
            nodes: 100,
            alpha: 1.5,
            labels: 10,
            seed: 0,
        };
        assert_eq!(c.edge_target(), 1000);
        let z = SyntheticConfig {
            nodes: 0,
            alpha: 1.5,
            labels: 10,
            seed: 0,
        };
        assert_eq!(z.edge_target(), 0);
    }
}

//! Umbrella crate for the strong-simulation workspace.
//!
//! Re-exports the workspace crates under one roof so examples, integration tests and
//! downstream users can depend on a single package. The implementation lives in the
//! `crates/` members:
//!
//! * [`graph`](ssim_graph) — graph substrate (CSR graphs, patterns, balls, bitsets),
//! * [`core`](ssim_core) — the simulation family and the `Match`/`Match+` engine,
//! * [`datasets`](ssim_datasets) — synthetic and real-world-like generators,
//! * [`baselines`](ssim_baselines) — VF2 / TALE-like / MCS baselines,
//! * [`distributed`](ssim_distributed) — the simulated coordinator/site runtime,
//! * [`experiments`](ssim_experiments) — the paper's experiment drivers.

pub use ssim_baselines as baselines;
pub use ssim_core as core;
pub use ssim_datasets as datasets;
pub use ssim_distributed as distributed;
pub use ssim_experiments as experiments;
pub use ssim_graph as graph;
